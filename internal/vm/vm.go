// Package vm interprets programs for the region-selection simulator.
//
// The interpreter plays the role Pin played in the paper: it produces the
// dynamic sequence of taken branches (and, implicitly, the linear
// fall-through segments between them) that the simulated dynamic
// optimization system consumes. Execution is fully deterministic: all
// branch behaviour comes from the program's own computation.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// BranchKind classifies a taken control transfer.
type BranchKind uint8

const (
	// KindJump is a direct unconditional jump.
	KindJump BranchKind = iota
	// KindCond is a taken conditional branch.
	KindCond
	// KindCall is a direct call.
	KindCall
	// KindIndCall is an indirect call.
	KindIndCall
	// KindIndJump is an indirect jump.
	KindIndJump
	// KindReturn is a return.
	KindReturn
)

// String returns a short name for the kind.
func (k BranchKind) String() string {
	switch k {
	case KindJump:
		return "jmp"
	case KindCond:
		return "br"
	case KindCall:
		return "call"
	case KindIndCall:
		return "calli"
	case KindIndJump:
		return "jmpi"
	case KindReturn:
		return "ret"
	default:
		return "?"
	}
}

// Sink receives the dynamic taken-branch stream. Between two consecutive
// calls, execution proceeded linearly from the previous call's tgt through
// the current call's src (inclusive); any conditional branches inside that
// range fell through.
type Sink interface {
	TakenBranch(src, tgt isa.Addr, kind BranchKind)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(src, tgt isa.Addr, kind BranchKind)

// TakenBranch calls f.
func (f SinkFunc) TakenBranch(src, tgt isa.Addr, kind BranchKind) { f(src, tgt, kind) }

// BlockEvent describes the completed execution of one basic block: the
// block whose final instruction is Src transferred control to the leader
// Tgt. Taken distinguishes taken branches from fall-through boundaries;
// Kind is meaningful only when Taken is set.
type BlockEvent struct {
	Src   isa.Addr
	Tgt   isa.Addr
	Kind  BranchKind
	Taken bool
}

// BlockSink is an optional Sink extension. When the sink passed to Run
// implements BlockSink, the machine delivers the dynamic stream as batches
// of per-block boundary events — every block boundary, fall-throughs
// included — instead of one TakenBranch call per taken branch. Consumers
// that track basic blocks (the dynopt simulator) avoid re-deriving
// fall-through boundaries from the program, and the interface-call cost is
// amortized over the batch. Events arrive in execution order; the slice is
// reused between batches and must not be retained.
type BlockSink interface {
	Sink
	BlockBatch(events []BlockEvent)
}

// Config bounds an interpretation run. Zero values select defaults.
type Config struct {
	// MemWords is the size of data memory in 64-bit words (default 1<<20).
	// Addresses wrap modulo the size.
	MemWords int
	// MaxInstrs aborts runaway programs (default 1<<32).
	MaxInstrs uint64
	// MaxCallDepth bounds the return-address stack (default 1<<16).
	MaxCallDepth int
}

func (c *Config) defaults() {
	if c.MemWords == 0 {
		c.MemWords = 1 << 20
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 1 << 32
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = 1 << 16
	}
}

// Stats summarizes a completed run.
type Stats struct {
	// Instrs is the total number of instructions executed.
	Instrs uint64
	// Branches is the number of taken branches.
	Branches uint64
	// FinalPC is the address of the halt instruction that ended the run.
	FinalPC isa.Addr
}

// Errors returned by Run.
var (
	ErrMaxInstrs = errors.New("vm: instruction budget exhausted")
	ErrCallDepth = errors.New("vm: call stack overflow")
	ErrUnderflow = errors.New("vm: return with empty call stack")
	ErrBadTarget = errors.New("vm: dynamic branch target out of range")
	ErrNotLeader = errors.New("vm: indirect branch target is not a block leader")
)

// pInstr is one predecoded instruction: operands widened into fixed slots,
// the branch kind and block-boundary flag resolved once at load time, so
// the dispatch loop fetches from a flat array and never re-derives static
// facts per step.
type pInstr struct {
	op    isa.Opcode
	cond  isa.Cond
	dst   isa.Reg
	srcA  isa.Reg
	srcB  isa.Reg
	kind  BranchKind // branch classification, for branch opcodes
	flags uint8
	// pad to keep imm aligned; struct is 24 bytes.
	_      uint8
	target isa.Addr
	imm    int64
}

const (
	// flagEndsBlock marks the final instruction of a basic block (its
	// successor address is a block leader, or the program end).
	flagEndsBlock uint8 = 1 << iota
)

// opPastEnd is the sentinel opcode placed one past the program's last
// instruction, so the dispatch loop detects a fall-off-the-end fetch
// without a per-step bounds check.
const opPastEnd isa.Opcode = 0xFF

// Machine is a reusable interpreter instance. The zero value must be
// loaded with Load before use; New combines allocation and loading.
type Machine struct {
	//lint:keep program identity, replaced by Load; Reset reuses the loaded program
	prog *program.Program
	//lint:keep configuration, replaced by Load
	cfg  Config
	regs [isa.NumRegs]int64
	mem  []int64
	ras  []isa.Addr // return-address stack
	//lint:keep predecode of prog, replaced by Load
	code []pInstr
	//lint:keep reusable block-event buffer, parked empty by Run's finishBatch
	batch []BlockEvent

	// dirtyLo/dirtyHi bound the words of mem written since the last Reset
	// (inclusive; lo > hi means none). Memory outside the range is
	// guaranteed zero, so Reset clears only the dirty window instead of the
	// whole (large, mostly untouched) image.
	dirtyLo, dirtyHi int64
}

// batchCap is the number of block events buffered between BlockBatch
// deliveries.
const batchCap = 1024

// New returns a Machine for the program.
func New(p *program.Program, cfg Config) *Machine {
	m := &Machine{}
	m.Load(p, cfg)
	return m
}

// Load re-targets the machine to program p under cfg, predecoding p and
// resetting all execution state. The machine's data memory and internal
// buffers are reused when their configured sizes allow, so a long-lived
// Machine can run many programs without re-allocating its (large) memory
// image.
func (m *Machine) Load(p *program.Program, cfg Config) {
	cfg.defaults()
	m.prog = p
	m.cfg = cfg
	if len(m.mem) != cfg.MemWords {
		m.mem = make([]int64, cfg.MemWords)
		m.dirtyLo, m.dirtyHi = int64(len(m.mem)), -1
	}
	m.predecode()
	m.Reset()
}

// predecode lowers the program into the dispatch-ready instruction array.
func (m *Machine) predecode() {
	n := m.prog.Len()
	if cap(m.code) < n+1 {
		m.code = make([]pInstr, n+1)
	}
	m.code = m.code[:n+1]
	for a := 0; a < n; a++ {
		in := m.prog.At(isa.Addr(a))
		pi := pInstr{
			op:     in.Op,
			cond:   in.Cond,
			dst:    in.Dst,
			srcA:   in.SrcA,
			srcB:   in.SrcB,
			imm:    in.Imm,
			target: in.Target,
		}
		switch in.Op {
		case isa.Jmp:
			pi.kind = KindJump
		case isa.Br:
			pi.kind = KindCond
		case isa.Call:
			pi.kind = KindCall
		case isa.CallInd:
			pi.kind = KindIndCall
		case isa.JmpInd:
			pi.kind = KindIndJump
		case isa.Ret:
			pi.kind = KindReturn
		}
		if a+1 >= n || m.prog.IsBlockStart(isa.Addr(a+1)) {
			pi.flags |= flagEndsBlock
		}
		m.code[a] = pi
	}
	m.code[n] = pInstr{op: opPastEnd}
}

// Reset clears registers, memory, and the call stack so the machine can be
// run again. Only the written region of memory is cleared; untouched words
// are zero by construction.
func (m *Machine) Reset() {
	m.regs = [isa.NumRegs]int64{}
	if m.dirtyLo <= m.dirtyHi {
		clear(m.mem[m.dirtyLo : m.dirtyHi+1])
	}
	m.dirtyLo, m.dirtyHi = int64(len(m.mem)), -1
	m.ras = m.ras[:0]
}

// Reg returns the current value of a register (for tests and examples).
func (m *Machine) Reg(r isa.Reg) int64 { return m.regs[r] }

// SetReg sets a register before a run (for parameterized workloads).
func (m *Machine) SetReg(r isa.Reg, v int64) { m.regs[r] = v }

// Mem returns the word at index i modulo the memory size.
func (m *Machine) Mem(i int64) int64 { return m.mem[m.wrap(i)] }

func (m *Machine) wrap(i int64) int64 {
	n := int64(len(m.mem))
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Run interprets the program from its entry until Halt, streaming taken
// branches to sink. sink may be nil. When sink implements BlockSink, the
// stream is delivered as batched per-block boundary events instead (see
// BlockSink); buffered events are flushed before every return.
//
// The dispatch loop fetches from the predecoded instruction array: direct
// branch targets were validated at load time (program construction
// guarantees they are block leaders), so only dynamic targets pay a
// validity check, and the fall-off-the-end case is caught by the sentinel
// instruction rather than a per-step bounds test.
//
//lint:hotpath interpreter dispatch loop
func (m *Machine) Run(sink Sink) (Stats, error) {
	var st Stats
	pc := m.prog.Entry()
	code := m.code
	progLen := len(code) - 1
	maxInstrs := m.cfg.MaxInstrs
	maxDepth := m.cfg.MaxCallDepth
	bs, _ := sink.(BlockSink)
	if bs != nil && cap(m.batch) == 0 {
		m.batch = make([]BlockEvent, 0, batchCap)
	}
	batch := m.batch[:0]
	for {
		if st.Instrs >= maxInstrs {
			m.finishBatch(bs, batch)
			return st, fmt.Errorf("%w after %d instructions at %d", ErrMaxInstrs, st.Instrs, pc)
		}
		in := &code[pc]
		st.Instrs++
		next := pc + 1
		var tgt isa.Addr
		taken := false
		switch in.op {
		case isa.Nop:
		case isa.Halt:
			st.FinalPC = pc
			m.finishBatch(bs, batch)
			return st, nil
		case isa.MovImm:
			m.regs[in.dst] = in.imm
		case isa.Mov:
			m.regs[in.dst] = m.regs[in.srcA]
		case isa.Add:
			m.regs[in.dst] = m.regs[in.srcA] + m.regs[in.srcB]
		case isa.AddImm:
			m.regs[in.dst] = m.regs[in.srcA] + in.imm
		case isa.Sub:
			m.regs[in.dst] = m.regs[in.srcA] - m.regs[in.srcB]
		case isa.Mul:
			m.regs[in.dst] = m.regs[in.srcA] * m.regs[in.srcB]
		case isa.Div:
			if d := m.regs[in.srcB]; d != 0 {
				m.regs[in.dst] = m.regs[in.srcA] / d
			} else {
				m.regs[in.dst] = 0
			}
		case isa.Rem:
			if d := m.regs[in.srcB]; d != 0 {
				m.regs[in.dst] = m.regs[in.srcA] % d
			} else {
				m.regs[in.dst] = 0
			}
		case isa.And:
			m.regs[in.dst] = m.regs[in.srcA] & m.regs[in.srcB]
		case isa.Or:
			m.regs[in.dst] = m.regs[in.srcA] | m.regs[in.srcB]
		case isa.Xor:
			m.regs[in.dst] = m.regs[in.srcA] ^ m.regs[in.srcB]
		case isa.Shl:
			m.regs[in.dst] = m.regs[in.srcA] << (uint64(m.regs[in.srcB]) & 63)
		case isa.Shr:
			m.regs[in.dst] = int64(uint64(m.regs[in.srcA]) >> (uint64(m.regs[in.srcB]) & 63))
		case isa.Load:
			m.regs[in.dst] = m.mem[m.wrap(m.regs[in.srcA]+in.imm)]
		case isa.Store:
			i := m.wrap(m.regs[in.srcA] + in.imm)
			m.mem[i] = m.regs[in.srcB]
			if i < m.dirtyLo {
				m.dirtyLo = i
			}
			if i > m.dirtyHi {
				m.dirtyHi = i
			}
		case isa.Jmp:
			tgt, taken = in.target, true
		case isa.Br:
			if in.cond.Eval(m.regs[in.srcA], m.regs[in.srcB]) {
				tgt, taken = in.target, true
			}
		case isa.Call:
			if len(m.ras) >= maxDepth {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w at %d", ErrCallDepth, pc)
			}
			m.ras = append(m.ras, pc+1)
			tgt, taken = in.target, true
		case isa.CallInd:
			v := m.regs[in.srcA]
			if v < 0 || int(isa.Addr(v)) >= progLen {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w: at %d, computed %d", ErrBadTarget, pc, v)
			}
			if len(m.ras) >= maxDepth {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w at %d", ErrCallDepth, pc)
			}
			m.ras = append(m.ras, pc+1)
			tgt = isa.Addr(v)
			if !m.prog.IsBlockStart(tgt) {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w: %d -> %d", ErrNotLeader, pc, tgt)
			}
			taken = true
		case isa.JmpInd:
			v := m.regs[in.srcA]
			if v < 0 || int(isa.Addr(v)) >= progLen {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w: at %d, computed %d", ErrBadTarget, pc, v)
			}
			tgt = isa.Addr(v)
			if !m.prog.IsBlockStart(tgt) {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w: %d -> %d", ErrNotLeader, pc, tgt)
			}
			taken = true
		case isa.Ret:
			if len(m.ras) == 0 {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w at %d", ErrUnderflow, pc)
			}
			tgt = m.ras[len(m.ras)-1]
			m.ras = m.ras[:len(m.ras)-1]
			if int(tgt) >= progLen {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w: %d -> %d", ErrBadTarget, pc, tgt)
			}
			if !m.prog.IsBlockStart(tgt) {
				m.finishBatch(bs, batch)
				return st, fmt.Errorf("%w: %d -> %d", ErrNotLeader, pc, tgt)
			}
			taken = true
		case opPastEnd:
			// A final conditional branch can fall through past the program
			// end, and a final call's return address lies past it; both
			// are program bugs the machine reports rather than crashes on.
			st.Instrs--
			m.finishBatch(bs, batch)
			return st, fmt.Errorf("%w: fetch at %d", ErrBadTarget, pc)
		default:
			m.finishBatch(bs, batch)
			return st, fmt.Errorf("vm: unknown opcode %d at %d", in.op, pc)
		}
		if taken {
			st.Branches++
			if bs != nil {
				batch = append(batch, BlockEvent{Src: pc, Tgt: tgt, Kind: in.kind, Taken: true})
				if len(batch) == cap(batch) {
					bs.BlockBatch(batch)
					batch = batch[:0]
				}
			} else if sink != nil {
				sink.TakenBranch(pc, tgt, in.kind)
			}
			pc = tgt
			continue
		}
		if in.flags&flagEndsBlock != 0 && bs != nil && int(next) < progLen {
			batch = append(batch, BlockEvent{Src: pc, Tgt: next})
			if len(batch) == cap(batch) {
				bs.BlockBatch(batch)
				batch = batch[:0]
			}
		}
		pc = next
	}
}

// finishBatch flushes buffered block events and parks the buffer for reuse.
func (m *Machine) finishBatch(bs BlockSink, batch []BlockEvent) {
	if bs != nil && len(batch) > 0 {
		bs.BlockBatch(batch)
	}
	m.batch = batch[:0]
}

// Run is a convenience wrapper: interpret p once with cfg, streaming to sink.
func Run(p *program.Program, cfg Config, sink Sink) (Stats, error) {
	return New(p, cfg).Run(sink)
}
