// Package vm interprets programs for the region-selection simulator.
//
// The interpreter plays the role Pin played in the paper: it produces the
// dynamic sequence of taken branches (and, implicitly, the linear
// fall-through segments between them) that the simulated dynamic
// optimization system consumes. Execution is fully deterministic: all
// branch behaviour comes from the program's own computation.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// BranchKind classifies a taken control transfer.
type BranchKind uint8

const (
	// KindJump is a direct unconditional jump.
	KindJump BranchKind = iota
	// KindCond is a taken conditional branch.
	KindCond
	// KindCall is a direct call.
	KindCall
	// KindIndCall is an indirect call.
	KindIndCall
	// KindIndJump is an indirect jump.
	KindIndJump
	// KindReturn is a return.
	KindReturn
)

// String returns a short name for the kind.
func (k BranchKind) String() string {
	switch k {
	case KindJump:
		return "jmp"
	case KindCond:
		return "br"
	case KindCall:
		return "call"
	case KindIndCall:
		return "calli"
	case KindIndJump:
		return "jmpi"
	case KindReturn:
		return "ret"
	default:
		return "?"
	}
}

// Sink receives the dynamic taken-branch stream. Between two consecutive
// calls, execution proceeded linearly from the previous call's tgt through
// the current call's src (inclusive); any conditional branches inside that
// range fell through.
type Sink interface {
	TakenBranch(src, tgt isa.Addr, kind BranchKind)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(src, tgt isa.Addr, kind BranchKind)

// TakenBranch calls f.
func (f SinkFunc) TakenBranch(src, tgt isa.Addr, kind BranchKind) { f(src, tgt, kind) }

// Config bounds an interpretation run. Zero values select defaults.
type Config struct {
	// MemWords is the size of data memory in 64-bit words (default 1<<20).
	// Addresses wrap modulo the size.
	MemWords int
	// MaxInstrs aborts runaway programs (default 1<<32).
	MaxInstrs uint64
	// MaxCallDepth bounds the return-address stack (default 1<<16).
	MaxCallDepth int
}

func (c *Config) defaults() {
	if c.MemWords == 0 {
		c.MemWords = 1 << 20
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 1 << 32
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = 1 << 16
	}
}

// Stats summarizes a completed run.
type Stats struct {
	// Instrs is the total number of instructions executed.
	Instrs uint64
	// Branches is the number of taken branches.
	Branches uint64
	// FinalPC is the address of the halt instruction that ended the run.
	FinalPC isa.Addr
}

// Errors returned by Run.
var (
	ErrMaxInstrs = errors.New("vm: instruction budget exhausted")
	ErrCallDepth = errors.New("vm: call stack overflow")
	ErrUnderflow = errors.New("vm: return with empty call stack")
	ErrBadTarget = errors.New("vm: dynamic branch target out of range")
	ErrNotLeader = errors.New("vm: indirect branch target is not a block leader")
)

// Machine is a reusable interpreter instance. The zero value is not usable;
// construct with New.
type Machine struct {
	prog *program.Program
	cfg  Config
	regs [isa.NumRegs]int64
	mem  []int64
	ras  []isa.Addr // return-address stack
}

// New returns a Machine for the program.
func New(p *program.Program, cfg Config) *Machine {
	cfg.defaults()
	return &Machine{prog: p, cfg: cfg, mem: make([]int64, cfg.MemWords)}
}

// Reset clears registers, memory, and the call stack so the machine can be
// run again.
func (m *Machine) Reset() {
	m.regs = [isa.NumRegs]int64{}
	for i := range m.mem {
		m.mem[i] = 0
	}
	m.ras = m.ras[:0]
}

// Reg returns the current value of a register (for tests and examples).
func (m *Machine) Reg(r isa.Reg) int64 { return m.regs[r] }

// SetReg sets a register before a run (for parameterized workloads).
func (m *Machine) SetReg(r isa.Reg, v int64) { m.regs[r] = v }

// Mem returns the word at index i modulo the memory size.
func (m *Machine) Mem(i int64) int64 { return m.mem[m.wrap(i)] }

func (m *Machine) wrap(i int64) int64 {
	n := int64(len(m.mem))
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Run interprets the program from its entry until Halt, streaming taken
// branches to sink. sink may be nil.
func (m *Machine) Run(sink Sink) (Stats, error) {
	var st Stats
	pc := m.prog.Entry()
	p := m.prog
	for {
		if st.Instrs >= m.cfg.MaxInstrs {
			return st, fmt.Errorf("%w after %d instructions at %d", ErrMaxInstrs, st.Instrs, pc)
		}
		if !p.InRange(pc) {
			// A final conditional branch can fall through past the program
			// end, and a final call's return address lies past it; both
			// are program bugs the machine reports rather than crashes on.
			return st, fmt.Errorf("%w: fetch at %d", ErrBadTarget, pc)
		}
		in := p.At(pc)
		st.Instrs++
		next := pc + 1
		switch in.Op {
		case isa.Nop:
		case isa.Halt:
			st.FinalPC = pc
			return st, nil
		case isa.MovImm:
			m.regs[in.Dst] = in.Imm
		case isa.Mov:
			m.regs[in.Dst] = m.regs[in.SrcA]
		case isa.Add:
			m.regs[in.Dst] = m.regs[in.SrcA] + m.regs[in.SrcB]
		case isa.AddImm:
			m.regs[in.Dst] = m.regs[in.SrcA] + in.Imm
		case isa.Sub:
			m.regs[in.Dst] = m.regs[in.SrcA] - m.regs[in.SrcB]
		case isa.Mul:
			m.regs[in.Dst] = m.regs[in.SrcA] * m.regs[in.SrcB]
		case isa.Div:
			if d := m.regs[in.SrcB]; d != 0 {
				m.regs[in.Dst] = m.regs[in.SrcA] / d
			} else {
				m.regs[in.Dst] = 0
			}
		case isa.Rem:
			if d := m.regs[in.SrcB]; d != 0 {
				m.regs[in.Dst] = m.regs[in.SrcA] % d
			} else {
				m.regs[in.Dst] = 0
			}
		case isa.And:
			m.regs[in.Dst] = m.regs[in.SrcA] & m.regs[in.SrcB]
		case isa.Or:
			m.regs[in.Dst] = m.regs[in.SrcA] | m.regs[in.SrcB]
		case isa.Xor:
			m.regs[in.Dst] = m.regs[in.SrcA] ^ m.regs[in.SrcB]
		case isa.Shl:
			m.regs[in.Dst] = m.regs[in.SrcA] << (uint64(m.regs[in.SrcB]) & 63)
		case isa.Shr:
			m.regs[in.Dst] = int64(uint64(m.regs[in.SrcA]) >> (uint64(m.regs[in.SrcB]) & 63))
		case isa.Load:
			m.regs[in.Dst] = m.mem[m.wrap(m.regs[in.SrcA]+in.Imm)]
		case isa.Store:
			m.mem[m.wrap(m.regs[in.SrcA]+in.Imm)] = m.regs[in.SrcB]
		case isa.Jmp:
			if err := m.branch(sink, &st, pc, in.Target, KindJump); err != nil {
				return st, err
			}
			next = in.Target
		case isa.Br:
			if in.Cond.Eval(m.regs[in.SrcA], m.regs[in.SrcB]) {
				if err := m.branch(sink, &st, pc, in.Target, KindCond); err != nil {
					return st, err
				}
				next = in.Target
			}
		case isa.Call:
			if len(m.ras) >= m.cfg.MaxCallDepth {
				return st, fmt.Errorf("%w at %d", ErrCallDepth, pc)
			}
			m.ras = append(m.ras, pc+1)
			if err := m.branch(sink, &st, pc, in.Target, KindCall); err != nil {
				return st, err
			}
			next = in.Target
		case isa.CallInd:
			tgt, err := m.dynTarget(pc, m.regs[in.SrcA])
			if err != nil {
				return st, err
			}
			if len(m.ras) >= m.cfg.MaxCallDepth {
				return st, fmt.Errorf("%w at %d", ErrCallDepth, pc)
			}
			m.ras = append(m.ras, pc+1)
			if err := m.branch(sink, &st, pc, tgt, KindIndCall); err != nil {
				return st, err
			}
			next = tgt
		case isa.JmpInd:
			tgt, err := m.dynTarget(pc, m.regs[in.SrcA])
			if err != nil {
				return st, err
			}
			if err := m.branch(sink, &st, pc, tgt, KindIndJump); err != nil {
				return st, err
			}
			next = tgt
		case isa.Ret:
			if len(m.ras) == 0 {
				return st, fmt.Errorf("%w at %d", ErrUnderflow, pc)
			}
			tgt := m.ras[len(m.ras)-1]
			m.ras = m.ras[:len(m.ras)-1]
			if err := m.branch(sink, &st, pc, tgt, KindReturn); err != nil {
				return st, err
			}
			next = tgt
		default:
			return st, fmt.Errorf("vm: unknown opcode %d at %d", in.Op, pc)
		}
		pc = next
	}
}

func (m *Machine) branch(sink Sink, st *Stats, src, tgt isa.Addr, kind BranchKind) error {
	if !m.prog.InRange(tgt) {
		return fmt.Errorf("%w: %d -> %d", ErrBadTarget, src, tgt)
	}
	if !m.prog.IsBlockStart(tgt) {
		return fmt.Errorf("%w: %d -> %d", ErrNotLeader, src, tgt)
	}
	st.Branches++
	if sink != nil {
		sink.TakenBranch(src, tgt, kind)
	}
	return nil
}

func (m *Machine) dynTarget(pc isa.Addr, v int64) (isa.Addr, error) {
	if v < 0 || !m.prog.InRange(isa.Addr(v)) {
		return 0, fmt.Errorf("%w: at %d, computed %d", ErrBadTarget, pc, v)
	}
	return isa.Addr(v), nil
}

// Run is a convenience wrapper: interpret p once with cfg, streaming to sink.
func Run(p *program.Program, cfg Config, sink Sink) (Stats, error) {
	return New(p, cfg).Run(sink)
}
