package vm

import "repro/internal/isa"

// teeSink fans the dynamic stream out to two block sinks.
type teeSink struct {
	a, b BlockSink
}

// Tee returns a BlockSink that delivers every event to both a and b — the
// hook that lets a recorder (internal/tracestream) capture the stream of
// the same run that drives the simulator, with no second interpretation.
// When either side is nil the other is returned directly, so the fan-out
// cost is only paid when both are present. Batch slices are reused by the
// machine, so neither side may retain them (the BlockSink contract).
func Tee(a, b BlockSink) BlockSink {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &teeSink{a: a, b: b}
}

// TakenBranch implements Sink.
func (t *teeSink) TakenBranch(src, tgt isa.Addr, kind BranchKind) {
	t.a.TakenBranch(src, tgt, kind)
	t.b.TakenBranch(src, tgt, kind)
}

// BlockBatch implements BlockSink.
//
//lint:hotpath fan-out on the batched event path
func (t *teeSink) BlockBatch(events []BlockEvent) {
	t.a.BlockBatch(events)
	t.b.BlockBatch(events)
}
