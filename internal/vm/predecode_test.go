package vm

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// referenceRun is the seed interpreter kept verbatim as an executable
// specification: a per-step fetch from the Program with a switch dispatch
// and per-branch validation. The predecoded dispatch loop in Run must
// produce the identical taken-branch stream, statistics, and error for any
// program.
func referenceRun(m *Machine, sink Sink) (Stats, error) {
	var st Stats
	pc := m.prog.Entry()
	p := m.prog
	branch := func(src, tgt isa.Addr, kind BranchKind) error {
		if !p.InRange(tgt) {
			return fmt.Errorf("%w: %d -> %d", ErrBadTarget, src, tgt)
		}
		if !p.IsBlockStart(tgt) {
			return fmt.Errorf("%w: %d -> %d", ErrNotLeader, src, tgt)
		}
		st.Branches++
		if sink != nil {
			sink.TakenBranch(src, tgt, kind)
		}
		return nil
	}
	dynTarget := func(pc isa.Addr, v int64) (isa.Addr, error) {
		if v < 0 || !p.InRange(isa.Addr(v)) {
			return 0, fmt.Errorf("%w: at %d, computed %d", ErrBadTarget, pc, v)
		}
		return isa.Addr(v), nil
	}
	for {
		if st.Instrs >= m.cfg.MaxInstrs {
			return st, fmt.Errorf("%w after %d instructions at %d", ErrMaxInstrs, st.Instrs, pc)
		}
		if !p.InRange(pc) {
			return st, fmt.Errorf("%w: fetch at %d", ErrBadTarget, pc)
		}
		in := p.At(pc)
		st.Instrs++
		next := pc + 1
		switch in.Op {
		case isa.Nop:
		case isa.Halt:
			st.FinalPC = pc
			return st, nil
		case isa.MovImm:
			m.regs[in.Dst] = in.Imm
		case isa.Mov:
			m.regs[in.Dst] = m.regs[in.SrcA]
		case isa.Add:
			m.regs[in.Dst] = m.regs[in.SrcA] + m.regs[in.SrcB]
		case isa.AddImm:
			m.regs[in.Dst] = m.regs[in.SrcA] + in.Imm
		case isa.Sub:
			m.regs[in.Dst] = m.regs[in.SrcA] - m.regs[in.SrcB]
		case isa.Mul:
			m.regs[in.Dst] = m.regs[in.SrcA] * m.regs[in.SrcB]
		case isa.Div:
			if d := m.regs[in.SrcB]; d != 0 {
				m.regs[in.Dst] = m.regs[in.SrcA] / d
			} else {
				m.regs[in.Dst] = 0
			}
		case isa.Rem:
			if d := m.regs[in.SrcB]; d != 0 {
				m.regs[in.Dst] = m.regs[in.SrcA] % d
			} else {
				m.regs[in.Dst] = 0
			}
		case isa.And:
			m.regs[in.Dst] = m.regs[in.SrcA] & m.regs[in.SrcB]
		case isa.Or:
			m.regs[in.Dst] = m.regs[in.SrcA] | m.regs[in.SrcB]
		case isa.Xor:
			m.regs[in.Dst] = m.regs[in.SrcA] ^ m.regs[in.SrcB]
		case isa.Shl:
			m.regs[in.Dst] = m.regs[in.SrcA] << (uint64(m.regs[in.SrcB]) & 63)
		case isa.Shr:
			m.regs[in.Dst] = int64(uint64(m.regs[in.SrcA]) >> (uint64(m.regs[in.SrcB]) & 63))
		case isa.Load:
			m.regs[in.Dst] = m.mem[m.wrap(m.regs[in.SrcA]+in.Imm)]
		case isa.Store:
			m.mem[m.wrap(m.regs[in.SrcA]+in.Imm)] = m.regs[in.SrcB]
		case isa.Jmp:
			if err := branch(pc, in.Target, KindJump); err != nil {
				return st, err
			}
			next = in.Target
		case isa.Br:
			if in.Cond.Eval(m.regs[in.SrcA], m.regs[in.SrcB]) {
				if err := branch(pc, in.Target, KindCond); err != nil {
					return st, err
				}
				next = in.Target
			}
		case isa.Call:
			if len(m.ras) >= m.cfg.MaxCallDepth {
				return st, fmt.Errorf("%w at %d", ErrCallDepth, pc)
			}
			m.ras = append(m.ras, pc+1)
			if err := branch(pc, in.Target, KindCall); err != nil {
				return st, err
			}
			next = in.Target
		case isa.CallInd:
			tgt, err := dynTarget(pc, m.regs[in.SrcA])
			if err != nil {
				return st, err
			}
			if len(m.ras) >= m.cfg.MaxCallDepth {
				return st, fmt.Errorf("%w at %d", ErrCallDepth, pc)
			}
			m.ras = append(m.ras, pc+1)
			if err := branch(pc, tgt, KindIndCall); err != nil {
				return st, err
			}
			next = tgt
		case isa.JmpInd:
			tgt, err := dynTarget(pc, m.regs[in.SrcA])
			if err != nil {
				return st, err
			}
			if err := branch(pc, tgt, KindIndJump); err != nil {
				return st, err
			}
			next = tgt
		case isa.Ret:
			if len(m.ras) == 0 {
				return st, fmt.Errorf("%w at %d", ErrUnderflow, pc)
			}
			tgt := m.ras[len(m.ras)-1]
			m.ras = m.ras[:len(m.ras)-1]
			if err := branch(pc, tgt, KindReturn); err != nil {
				return st, err
			}
			next = tgt
		default:
			return st, fmt.Errorf("vm: unknown opcode %d at %d", in.Op, pc)
		}
		pc = next
	}
}

// corpus returns a diverse set of programs: every registered workload at a
// small scale plus random structured programs.
func corpus(t *testing.T) map[string]*program.Program {
	t.Helper()
	progs := map[string]*program.Program{}
	for _, name := range workloads.Names() {
		w, _ := workloads.Get(name)
		progs["workload/"+name] = w.Build(3)
	}
	for i := 0; i < 25; i++ {
		cfg := workloads.GenConfig{
			Seed:       1000 + int64(i),
			Funcs:      i % 6,
			MaxDepth:   1 + i%4,
			Iters:      5 + i%40,
			Constructs: 1 + i%7,
		}
		progs[fmt.Sprintf("random/%d", i)] = workloads.Random(cfg)
	}
	return progs
}

// TestPredecodedMatchesReference proves the predecoded dispatch loop is
// observationally identical to the seed interpreter: same taken-branch
// stream (addresses and kinds), same statistics, same final register file,
// for every workload and a corpus of random structured programs.
func TestPredecodedMatchesReference(t *testing.T) {
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			var got, want []event
			mNew := New(p, Config{})
			stNew, errNew := mNew.Run(SinkFunc(func(src, tgt isa.Addr, kind BranchKind) {
				got = append(got, event{src, tgt, kind})
			}))
			mRef := New(p, Config{})
			stRef, errRef := referenceRun(mRef, SinkFunc(func(src, tgt isa.Addr, kind BranchKind) {
				want = append(want, event{src, tgt, kind})
			}))
			if (errNew == nil) != (errRef == nil) {
				t.Fatalf("error mismatch: predecoded %v, reference %v", errNew, errRef)
			}
			if errNew != nil && errNew.Error() != errRef.Error() {
				t.Fatalf("error text mismatch:\n predecoded %v\n reference  %v", errNew, errRef)
			}
			if stNew != stRef {
				t.Fatalf("stats mismatch: predecoded %+v, reference %+v", stNew, stRef)
			}
			if len(got) != len(want) {
				t.Fatalf("event count mismatch: predecoded %d, reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("event %d mismatch: predecoded %+v, reference %+v", i, got[i], want[i])
				}
			}
			for r := 0; r < isa.NumRegs; r++ {
				if mNew.Reg(isa.Reg(r)) != mRef.Reg(isa.Reg(r)) {
					t.Fatalf("r%d mismatch: predecoded %d, reference %d",
						r, mNew.Reg(isa.Reg(r)), mRef.Reg(isa.Reg(r)))
				}
			}
		})
	}
}

// batchRecorder collects both views of the stream.
type batchRecorder struct {
	branches []event
	blocks   []BlockEvent
}

func (r *batchRecorder) TakenBranch(src, tgt isa.Addr, kind BranchKind) {
	r.branches = append(r.branches, event{src, tgt, kind})
}

func (r *batchRecorder) BlockBatch(events []BlockEvent) {
	r.blocks = append(r.blocks, events...)
}

// TestBlockStreamMatchesBranchStream proves the batched block-event stream
// is a refinement of the taken-branch stream: filtering the block events to
// taken branches yields exactly the TakenBranch stream, and every event's
// Src is the final instruction of the block led by the preceding event's
// Tgt (fall-through boundaries resolved correctly).
func TestBlockStreamMatchesBranchStream(t *testing.T) {
	for name, p := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			var branchOnly []event
			if _, err := New(p, Config{}).Run(SinkFunc(func(src, tgt isa.Addr, kind BranchKind) {
				branchOnly = append(branchOnly, event{src, tgt, kind})
			})); err != nil {
				t.Fatal(err)
			}
			rec := &batchRecorder{}
			if _, err := New(p, Config{}).Run(rec); err != nil {
				t.Fatal(err)
			}
			var taken []event
			pos := p.Entry()
			for i, ev := range rec.blocks {
				if p.BlockEnd(pos)-1 != ev.Src {
					t.Fatalf("block event %d: src %d is not the end of block led by %d", i, ev.Src, pos)
				}
				if !p.IsBlockStart(ev.Tgt) {
					t.Fatalf("block event %d: tgt %d is not a leader", i, ev.Tgt)
				}
				if !ev.Taken && ev.Tgt != ev.Src+1 {
					t.Fatalf("block event %d: fall-through to %d from %d", i, ev.Tgt, ev.Src)
				}
				if ev.Taken {
					taken = append(taken, event{ev.Src, ev.Tgt, ev.Kind})
				}
				pos = ev.Tgt
			}
			if len(taken) != len(branchOnly) {
				t.Fatalf("taken count mismatch: blocks %d, branches %d", len(taken), len(branchOnly))
			}
			for i := range taken {
				if taken[i] != branchOnly[i] {
					t.Fatalf("taken event %d mismatch: %+v vs %+v", i, taken[i], branchOnly[i])
				}
			}
		})
	}
}

// TestMachineLoadReuse proves a machine re-targeted with Load behaves like a
// fresh one: run program A (dirtying memory), Load program B, and the B run
// must match a fresh machine's run of B exactly.
func TestMachineLoadReuse(t *testing.T) {
	progs := corpus(t)
	a := progs["workload/gcc"]
	b := progs["workload/mcf"]
	reused := New(a, Config{})
	if _, err := reused.Run(nil); err != nil {
		t.Fatal(err)
	}
	reused.Load(b, Config{})
	var got, want []event
	stGot, err := reused.Run(SinkFunc(func(src, tgt isa.Addr, kind BranchKind) {
		got = append(got, event{src, tgt, kind})
	}))
	if err != nil {
		t.Fatal(err)
	}
	stWant, err := New(b, Config{}).Run(SinkFunc(func(src, tgt isa.Addr, kind BranchKind) {
		want = append(want, event{src, tgt, kind})
	}))
	if err != nil {
		t.Fatal(err)
	}
	if stGot != stWant {
		t.Fatalf("stats mismatch after Load: %+v vs %+v", stGot, stWant)
	}
	if len(got) != len(want) {
		t.Fatalf("event count mismatch after Load: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d mismatch after Load: %+v vs %+v", i, got[i], want[i])
		}
	}
}
