package sweepnet

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// TestCodecCoversStructs pins the field counts of the structs the codec
// serializes positionally. If core.Params or metrics.Report grows a field,
// this fails until the codec (and these constants) are updated in lockstep.
func TestCodecCoversStructs(t *testing.T) {
	if n := reflect.TypeOf(core.Params{}).NumField(); n != paramsFieldCount {
		t.Errorf("core.Params has %d fields, codec expects %d — update encode/decodeConfig", n, paramsFieldCount)
	}
	if n := reflect.TypeOf(metrics.Report{}).NumField(); n != reportFieldCount {
		t.Errorf("metrics.Report has %d fields, codec expects %d — update encode/decodeResult", n, reportFieldCount)
	}
	floats := 0
	rt := reflect.TypeOf(metrics.Report{})
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type.Kind() == reflect.Float64 {
			floats++
		}
	}
	if floats != reportFloatCount {
		t.Errorf("metrics.Report has %d float64 fields, codec expects %d — update minResultBytes", floats, reportFloatCount)
	}
	// The zero value is the minimum-size encoding, so the decoder batch
	// bounds (rbuf.count) must equal it exactly, not approximately.
	var w wbuf
	var rep metrics.Report
	encodeResult(&w, 0, &rep)
	if len(w.b) != minResultBytes {
		t.Errorf("zero-value result encodes to %d bytes, minResultBytes says %d", len(w.b), minResultBytes)
	}
	w.reset()
	encodeConfig(&w, sweep.Config{})
	if len(w.b) != minConfigBytes {
		t.Errorf("zero-value config encodes to %d bytes, minConfigBytes says %d", len(w.b), minConfigBytes)
	}
}

// randomGrid builds a grid with randomized axes, biased toward small sizes
// but covering empties and negative parameter values.
func randomGrid(rng *rand.Rand) sweep.Grid {
	names := []string{"gzip", "vpr", "gcc", "mcf", "crafty", "synthetic", "with,comma", ""}
	var g sweep.Grid
	for i := rng.Intn(5); i > 0; i-- {
		g.Workloads = append(g.Workloads, names[rng.Intn(len(names))])
	}
	g.Scale = rng.Intn(2000) - 100
	sels := []string{"net", "lei", "net+comb", "lei+comb", "adaptive", "mojo-net"}
	for i := rng.Intn(4); i > 0; i-- {
		g.Selectors = append(g.Selectors, sels[rng.Intn(len(sels))])
	}
	for i := rng.Intn(4); i > 0; i-- {
		c := sweep.Config{Params: core.DefaultParams()}
		c.CacheLimitBytes = rng.Intn(1 << 20)
		c.Params.NETThreshold = rng.Intn(200) - 50
		c.Params.LEIThreshold = rng.Intn(200)
		c.Params.HistoryCap = rng.Intn(4096)
		c.Params.TProf = rng.Intn(100000)
		c.Params.TMin = rng.Intn(100)
		c.Params.MaxTraceInstrs = rng.Intn(10000)
		c.Params.MaxTraceBlocks = rng.Intn(1000)
		c.Params.PhaseWindow = rng.Intn(2048)
		c.Params.PhaseDwell = rng.Intn(16)
		c.Params.AblateLEIExitGrowth = rng.Intn(2) == 0
		c.Params.AblateRejoinPaths = rng.Intn(2) == 0
		c.Params.AblateNETBackwardStop = rng.Intn(2) == 0
		g.Configs = append(g.Configs, c)
	}
	return g
}

// randomReport fills every Report field by reflection, so a field added to
// the struct automatically joins the round-trip property (and fails the
// byte-identity check until the codec learns it).
func randomReport(rng *rand.Rand) metrics.Report {
	var rep metrics.Report
	v := reflect.ValueOf(&rep).Elem()
	words := []string{"gzip", "net", "lei+comb", "", "a b", `"q"`, "x,y"}
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.String:
			f.SetString(words[rng.Intn(len(words))])
		case reflect.Uint64:
			f.SetUint(rng.Uint64() >> uint(rng.Intn(64)))
		case reflect.Int:
			f.SetInt(int64(rng.Intn(1<<30) - 1<<29))
		case reflect.Float64:
			// Include exact and irrational values; byte identity must hold
			// bit-for-bit either way.
			f.SetFloat([]float64{0, 1, 0.5, math.Pi, -1e-9, rng.Float64() * 1e6}[rng.Intn(6)])
		case reflect.Bool:
			f.SetBool(rng.Intn(2) == 0)
		default:
			panic("unhandled Report field kind " + f.Kind().String())
		}
	}
	return rep
}

// TestGridRoundTrip is the codec property test: encode → decode → encode is
// byte-identical and decode reproduces the value, over random grids.
func TestGridRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		g := randomGrid(rng)
		var w wbuf
		encodeGrid(&w, g)
		first := append([]byte(nil), w.b...)
		r := rbuf{b: first}
		got, err := decodeGrid(&r)
		if err != nil {
			t.Fatalf("grid %d: decode: %v", i, err)
		}
		if r.rem() != 0 {
			t.Fatalf("grid %d: %d bytes left after decode", i, r.rem())
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("grid %d: round trip changed value\n got %+v\nwant %+v", i, got, g)
		}
		w.reset()
		encodeGrid(&w, got)
		if !bytes.Equal(w.b, first) {
			t.Fatalf("grid %d: re-encode not byte-identical", i)
		}
	}
}

// TestResultRoundTrip covers the result path: random reports round-trip
// exactly, re-encode byte-identically, and batches preserve order.
func TestResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := newInterner()
	for i := 0; i < 200; i++ {
		rep := randomReport(rng)
		idx := rng.Intn(1 << 20)
		var w wbuf
		encodeResult(&w, idx, &rep)
		first := append([]byte(nil), w.b...)
		r := rbuf{b: first}
		var res sweep.Result
		if err := decodeResult(&r, in, &res); err != nil {
			t.Fatalf("result %d: decode: %v", i, err)
		}
		if r.rem() != 0 {
			t.Fatalf("result %d: %d bytes left after decode", i, r.rem())
		}
		if res.Index != idx || !reflect.DeepEqual(res.Report, rep) {
			t.Fatalf("result %d: round trip changed value\n got %d %+v\nwant %d %+v",
				i, res.Index, res.Report, idx, rep)
		}
		w.reset()
		encodeResult(&w, res.Index, &res.Report)
		if !bytes.Equal(w.b, first) {
			t.Fatalf("result %d: re-encode not byte-identical", i)
		}
	}
}

// TestResultBatchOrder encodes a batch of results into one buffer and checks
// sequential decode returns them in encode order.
func TestResultBatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reps := make([]metrics.Report, 32)
	var w wbuf
	for i := range reps {
		reps[i] = randomReport(rng)
		encodeResult(&w, i, &reps[i])
	}
	r := rbuf{b: w.b}
	in := newInterner()
	for i := range reps {
		var res sweep.Result
		if err := decodeResult(&r, in, &res); err != nil {
			t.Fatalf("batch slot %d: %v", i, err)
		}
		if res.Index != i || !reflect.DeepEqual(res.Report, reps[i]) {
			t.Fatalf("batch slot %d decoded as index %d / wrong report", i, res.Index)
		}
	}
	if r.rem() != 0 {
		t.Fatalf("%d bytes left after batch decode", r.rem())
	}
}

// TestCodecSteadyStateAllocFree guards the wire hot path: once buffers and
// the interner are warm, encoding and decoding a result performs zero heap
// allocations.
func TestCodecSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rep := randomReport(rng)
	rep.Workload, rep.Selector = "gzip", "net+comb"
	var w wbuf
	in := newInterner()
	var res sweep.Result
	// Warm up: size the encode buffer, populate the interner.
	encodeResult(&w, 7, &rep)
	r := rbuf{b: w.b}
	if err := decodeResult(&r, in, &res); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		w.reset()
		encodeResult(&w, 7, &rep)
	}); allocs != 0 {
		t.Errorf("encodeResult allocates %.1f per run in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r := rbuf{b: w.b}
		if err := decodeResult(&r, in, &res); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("decodeResult allocates %.1f per run in steady state, want 0", allocs)
	}
}

// TestDecodeErrors feeds every strict prefix of valid encodings to the
// decoders: all must return an error (never panic, never succeed short).
func TestDecodeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGrid(rng)
	// Force non-empty axes so the encoding exercises strings and configs.
	g.Workloads = append(g.Workloads, "gzip")
	g.Configs = append(g.Configs, sweep.Config{Params: core.DefaultParams()})
	var wg wbuf
	encodeGrid(&wg, g)
	for n := 0; n < len(wg.b); n++ {
		r := rbuf{b: wg.b[:n]}
		if _, err := decodeGrid(&r); err == nil {
			t.Fatalf("decodeGrid accepted a %d-byte prefix of a %d-byte grid", n, len(wg.b))
		}
	}
	rep := randomReport(rng)
	var wr wbuf
	encodeResult(&wr, 3, &rep)
	in := newInterner()
	for n := 0; n < len(wr.b); n++ {
		r := rbuf{b: wr.b[:n]}
		var res sweep.Result
		if err := decodeResult(&r, in, &res); err == nil {
			t.Fatalf("decodeResult accepted a %d-byte prefix of a %d-byte result", n, len(wr.b))
		}
	}
	var wrange wbuf
	encodeRange(&wrange, 10, 250)
	for n := 0; n < len(wrange.b); n++ {
		r := rbuf{b: wrange.b[:n]}
		if _, _, err := decodeRange(&r); err == nil {
			t.Fatalf("decodeRange accepted a %d-byte prefix", n)
		}
	}
	// Inverted and overflowing ranges are rejected outright.
	var winv wbuf
	encodeRange(&winv, 250, 10)
	r := rbuf{b: winv.b}
	if _, _, err := decodeRange(&r); err == nil {
		t.Fatal("decodeRange accepted hi < lo")
	}
	// A count larger than the remaining payload must error before any
	// allocation sized from it.
	var wc wbuf
	wc.putU(1 << 40)
	r = rbuf{b: wc.b}
	if _, err := decodeGrid(&r); err == nil {
		t.Fatal("decodeGrid accepted a workload count exceeding the frame")
	}
	// Unknown ablation flag bits are a protocol error.
	var wcfg wbuf
	encodeConfig(&wcfg, sweep.Config{Params: core.DefaultParams()})
	wcfg.b[len(wcfg.b)-1] = 0x80
	r = rbuf{b: wcfg.b}
	if _, err := decodeConfig(&r); err == nil {
		t.Fatal("decodeConfig accepted unknown flag bits")
	}
}

// FuzzJobCodec throws arbitrary bytes at every decoder. The property is
// crash-freedom: malformed frames error; frames that decode must re-encode
// to a value that decodes identically.
func FuzzJobCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	var w wbuf
	encodeGrid(&w, randomGrid(rng))
	f.Add(byte(frameGrid), append([]byte(nil), w.b...))
	w.reset()
	rep := randomReport(rng)
	encodeResult(&w, 12, &rep)
	f.Add(byte(frameResults), append([]byte(nil), w.b...))
	w.reset()
	encodeRange(&w, 4, 99)
	f.Add(byte(frameRange), append([]byte(nil), w.b...))
	// Truncated and bit-flipped variants.
	w.reset()
	encodeGrid(&w, randomGrid(rng))
	trunc := append([]byte(nil), w.b[:len(w.b)/2]...)
	f.Add(byte(frameGrid), trunc)
	if len(w.b) > 3 {
		corrupt := append([]byte(nil), w.b...)
		corrupt[1] ^= 0xff
		f.Add(byte(frameGrid), corrupt)
	}

	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		switch kind % 4 {
		case 0:
			r := rbuf{b: payload}
			if g, err := decodeGrid(&r); err == nil {
				var w2 wbuf
				encodeGrid(&w2, g)
				r2 := rbuf{b: w2.b}
				g2, err := decodeGrid(&r2)
				if err != nil || !reflect.DeepEqual(g, g2) {
					t.Fatalf("accepted grid does not round-trip: %v", err)
				}
			}
		case 1:
			r := rbuf{b: payload}
			var res sweep.Result
			if err := decodeResult(&r, newInterner(), &res); err == nil {
				// Compare re-encoded bytes, not values: floats are bit-exact
				// on the wire but NaN defeats reflect.DeepEqual.
				var w2 wbuf
				encodeResult(&w2, res.Index, &res.Report)
				r2 := rbuf{b: w2.b}
				var res2 sweep.Result
				if err := decodeResult(&r2, newInterner(), &res2); err != nil {
					t.Fatalf("re-encoded result does not decode: %v", err)
				}
				var w3 wbuf
				encodeResult(&w3, res2.Index, &res2.Report)
				if !bytes.Equal(w2.b, w3.b) {
					t.Fatal("accepted result is not byte-stable under re-encode")
				}
			}
		case 2:
			r := rbuf{b: payload}
			if lo, hi, err := decodeRange(&r); err == nil && (lo < 0 || hi < lo) {
				t.Fatalf("decodeRange accepted malformed [%d,%d)", lo, hi)
			}
		case 3:
			r := rbuf{b: payload}
			decodeConfig(&r)
		}
	})
}
