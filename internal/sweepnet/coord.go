package sweepnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Options tunes the coordinator.
type Options struct {
	// Window bounds the reorder ring merging worker result streams, in
	// jobs; it is raised to at least one chunk (admission control needs a
	// whole range to fit). <=0 sizes it from the chunk and worker count.
	Window int
	// Chunk is the number of jobs per assigned range. <=0 picks a size
	// from the grid and worker count.
	Chunk int
	// Inflight is how many ranges one worker may hold at once (the second
	// range hides assignment latency behind execution). <=0 means 2.
	Inflight int
	// HeartbeatTimeout declares a worker dead when nothing — results,
	// range completions, heartbeats — arrives on its connection for this
	// long. <=0 means 10s.
	HeartbeatTimeout time.Duration
	// Retries is how many times one range may be reassigned after worker
	// failures before the run fails. <=0 means 3.
	Retries int
	// Dial overrides the TCP dialer (tests inject failing or proxied
	// connections). nil means net.Dialer.DialContext.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.Inflight <= 0 {
		o.Inflight = 2
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.Dial == nil {
		var d net.Dialer
		o.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return o
}

// jobRange is a contiguous slice [lo, hi) of the grid's job-index space.
// attempts counts reassignments after worker failures.
type jobRange struct {
	lo, hi   int
	attempts int
}

// assignment tracks one range handed to a worker. watermark is the next
// result index the worker owes; results below it have already been merged,
// so a reassignment after failure resumes at the watermark and the output
// stream never sees a duplicate.
type assignment struct {
	jobRange
	watermark int
}

// coordinator is the shared state of one distributed run.
type coordinator struct {
	opts   Options
	grid   sweep.Grid
	njobs  int
	chunk  int
	window int
	ord    *sweep.OrderedSink
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      sync.Cond
	pending   []jobRange // unassigned ranges, sorted by lo
	delivered int        // results merged into the output stream
	live      int        // connected workers
	stopped   bool       // run cancelled or failed
	finished  bool       // every job delivered
	errs      []error
	done      chan struct{} // closed on completion
}

// RunGrid executes the grid on the sweepd workers at addrs, merging their
// result streams into sink in grid-enumeration order. The output is
// byte-identical to a local sweep.RunGrid over the same grid: results are
// delivered exactly once, in order, with jobs rebuilt from their indices.
// Worker failures mid-run reassign the unfinished remainder of their ranges
// (bounded by Options.Retries); job errors and context cancellation fail
// fast, and every error observed before the stop is aggregated with
// errors.Join in deterministic order.
func RunGrid(ctx context.Context, addrs []string, g sweep.Grid, opts Options, sink sweep.ResultSink) error {
	njobs := g.NumJobs()
	if njobs == 0 {
		return ctx.Err()
	}
	if len(addrs) == 0 {
		return errors.New("sweepnet: no worker addresses")
	}
	if sink == nil {
		sink = sweep.FuncSink(func(sweep.Result) {})
	}
	opts = opts.withDefaults()
	chunk := opts.Chunk
	if chunk <= 0 {
		// Aim for several rounds of assignment per worker so stealing-by-
		// reassignment has granularity, without descending to per-job RPCs.
		chunk = njobs / (8 * len(addrs))
		chunk = max(1, min(chunk, 512))
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * chunk * len(addrs) * opts.Inflight
	}
	// Admission control requires a whole range to fit the window; see
	// nextRange.
	window = max(window, chunk)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c := &coordinator{
		opts:   opts,
		grid:   g,
		njobs:  njobs,
		chunk:  chunk,
		window: window,
		ord:    sweep.NewOrderedSink(0, window, sink),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	c.cond.L = &c.mu
	for lo := 0; lo < njobs; lo += chunk {
		c.pending = append(c.pending, jobRange{lo: lo, hi: min(lo+chunk, njobs)})
	}
	c.live = len(addrs)

	// The monitor propagates cancellation (external, fail-fast, or
	// completion) to everything that can block: the reorder ring and the
	// assignment waiters.
	monitorDone := make(chan struct{})
	go func() {
		<-runCtx.Done()
		c.ord.Cancel()
		c.mu.Lock()
		c.stopped = true
		c.cond.Broadcast()
		c.mu.Unlock()
		close(monitorDone)
	}()

	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.runWorker(runCtx, addr)
		}(addr)
	}
	wg.Wait()
	cancel()
	<-monitorDone

	c.mu.Lock()
	errs := c.errs
	finished := c.finished
	c.mu.Unlock()
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return errors.Join(errs...)
	}
	if !finished {
		// No recorded error but the grid did not complete: the context was
		// cancelled from outside.
		return ctx.Err()
	}
	return nil
}

// fail records an error and stops the run.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
	c.cancel()
}

// finish marks the run complete (every result merged) and releases every
// worker loop.
func (c *coordinator) finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
	close(c.done)
	c.cancel()
}

// runWorker owns one worker connection for the whole run: dial, handshake,
// then a sender goroutine assigning ranges and a reader loop merging
// results. When the connection dies mid-run the unfinished remainder of its
// assignments is requeued for the surviving workers.
func (c *coordinator) runWorker(ctx context.Context, addr string) {
	defer func() {
		c.mu.Lock()
		c.live--
		// ctx.Err() is checked directly (not just c.stopped): on external
		// cancellation this defer can run before the monitor goroutine has
		// set stopped, and that race must not masquerade as worker failure.
		noneLeft := c.live == 0 && !c.finished && !c.stopped && ctx.Err() == nil
		c.cond.Broadcast()
		c.mu.Unlock()
		if noneLeft {
			c.fail(errors.New("sweepnet: all workers failed before the grid completed"))
		}
	}()
	conn, err := c.opts.Dial(ctx, addr)
	if err != nil {
		c.fail(fmt.Errorf("sweepnet: dial %s: %w", addr, err))
		return
	}
	defer conn.Close()
	// Unwind blocked reads and writes when the run stops.
	closed := make(chan struct{})
	defer close(closed)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-closed:
		}
	}()

	w := &workerConn{c: c, addr: addr, conn: conn, fw: newFrameWriter(conn), fr: newFrameReader(conn), intern: newInterner()}
	err = w.session(ctx)
	if errors.Is(err, errFrameTooLarge) {
		// Deterministic: every worker rejects the same grid. Fail the run
		// with the real cause instead of "all workers failed".
		c.fail(err)
	}
	w.abandon(ctx, err)
}

// workerConn is the per-connection coordinator state.
type workerConn struct {
	c      *coordinator
	addr   string
	conn   net.Conn
	fw     *frameWriter
	fr     *frameReader
	intern *interner

	mu       sync.Mutex
	assigned []*assignment // ranges in flight on this worker, FIFO by send order
	dead     bool
}

// session performs the handshake and runs the reader loop; the sender runs
// alongside until the connection dies or the run ends.
func (w *workerConn) session(ctx context.Context) error {
	if err := w.handshake(); err != nil {
		return err
	}
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		w.sender()
	}()
	err := w.readLoop(ctx)
	// Release the sender: mark the connection dead so nextRange stops
	// handing it work.
	w.mu.Lock()
	w.dead = true
	w.mu.Unlock()
	w.c.mu.Lock()
	w.c.cond.Broadcast()
	w.c.mu.Unlock()
	w.conn.Close()
	<-senderDone
	return err
}

// handshake validates the worker's hello and ships the grid.
func (w *workerConn) handshake() error {
	w.conn.SetReadDeadline(time.Now().Add(w.c.opts.HeartbeatTimeout))
	t, r, err := w.fr.next()
	if err != nil {
		return fmt.Errorf("sweepnet: %s: reading hello: %w", w.addr, err)
	}
	if t != frameHello {
		return fmt.Errorf("sweepnet: %s: first frame %#x, want hello", w.addr, t)
	}
	ver, err := r.u()
	if err != nil {
		return fmt.Errorf("sweepnet: %s: hello: %w", w.addr, err)
	}
	if ver != protoVersion {
		return fmt.Errorf("sweepnet: %s speaks protocol %d, want %d", w.addr, ver, protoVersion)
	}
	encodeGrid(w.fw.begin(frameGrid), w.c.grid)
	if err := w.fw.end(); err != nil {
		if errors.Is(err, errFrameTooLarge) {
			return fmt.Errorf("sweepnet: grid of %d configs too large for one frame — split the config axis across runs: %w", len(w.c.grid.Configs), err)
		}
		return fmt.Errorf("sweepnet: %s: sending grid: %w", w.addr, err)
	}
	return w.fw.flush()
}

// sender assigns pending ranges to this worker as admission allows.
func (w *workerConn) sender() {
	for {
		a, ok := w.nextRange()
		if !ok {
			return
		}
		encodeRange(w.fw.begin(frameRange), a.lo, a.hi)
		err := w.fw.end()
		if err == nil {
			err = w.fw.flush()
		}
		if err != nil {
			// The reader sees the broken connection too and owns the
			// requeue; just stop assigning.
			return
		}
	}
}

// nextRange blocks until this worker may take another range, claims the
// lowest pending one, and records the assignment. Admission control: a
// range is handed out only when it fits the reorder window above the
// delivery frontier, which guarantees merging one of its results never
// blocks — the invariant that makes the multi-connection merge
// deadlock-free (see docs/SWEEPD.md).
func (w *workerConn) nextRange() (*assignment, bool) {
	c := w.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.stopped || c.finished {
			return nil, false
		}
		w.mu.Lock()
		dead, inflight := w.dead, len(w.assigned)
		w.mu.Unlock()
		if dead {
			return nil, false
		}
		if len(c.pending) > 0 && inflight < c.opts.Inflight &&
			c.pending[0].hi-c.ord.Next() <= c.window {
			r := c.pending[0]
			c.pending = c.pending[1:]
			a := &assignment{jobRange: r, watermark: r.lo}
			w.mu.Lock()
			w.assigned = append(w.assigned, a)
			w.mu.Unlock()
			return a, true
		}
		c.cond.Wait()
	}
}

// readLoop consumes worker frames until the run ends or the connection
// dies. A read deadline of HeartbeatTimeout bounds silence: the worker
// heartbeats much more often, so a timeout means the worker is gone.
func (w *workerConn) readLoop(ctx context.Context) error {
	for {
		w.conn.SetReadDeadline(time.Now().Add(w.c.opts.HeartbeatTimeout))
		t, r, err := w.fr.next()
		if err != nil {
			if ctx.Err() != nil || w.c.isFinished() {
				return nil // normal teardown, not a worker failure
			}
			return fmt.Errorf("sweepnet: %s: %w", w.addr, err)
		}
		switch t {
		case frameHeartbeat:
		case frameResults:
			if err := w.handleResults(&r); err != nil {
				return fmt.Errorf("sweepnet: %s: %w", w.addr, err)
			}
		case frameRangeDone:
			if err := w.handleRangeDone(&r); err != nil {
				return fmt.Errorf("sweepnet: %s: %w", w.addr, err)
			}
		case frameJobErr:
			msg, err := r.strBytes()
			if err != nil {
				return fmt.Errorf("sweepnet: %s: job error frame: %w", w.addr, err)
			}
			w.c.fail(fmt.Errorf("sweepnet: worker %s: %s", w.addr, msg))
			return nil
		default:
			return fmt.Errorf("sweepnet: %s: unexpected frame %#x", w.addr, t)
		}
		if w.c.isFinished() {
			return nil
		}
	}
}

// handleResults merges one batch. Results within a connection arrive in
// increasing index order per assignment (the worker executes a range
// through the ordered local engine), so each must land exactly on its
// assignment's watermark.
func (w *workerConn) handleResults(r *rbuf) error {
	n, err := r.count(minResultBytes)
	if err != nil {
		return err
	}
	c := w.c
	for k := 0; k < n; k++ {
		var res sweep.Result
		if err := decodeResult(r, w.intern, &res); err != nil {
			return err
		}
		a := w.assignmentFor(res.Index)
		if a == nil || res.Index != a.watermark {
			return fmt.Errorf("result index %d does not match any assignment watermark", res.Index)
		}
		res.Job = c.grid.JobAt(res.Index)
		// Merge before advancing the watermark: a result counts as
		// delivered only once the ordered sink owns it, so a failure
		// between decode and merge replays the index instead of losing it.
		c.ord.Deliver(res)
		a.watermark++
		c.mu.Lock()
		c.delivered++
		finished := c.delivered == c.njobs
		// The frontier moved; admission-blocked senders may proceed.
		c.cond.Broadcast()
		c.mu.Unlock()
		if finished {
			c.finish()
			return nil
		}
	}
	return nil
}

// handleRangeDone retires a completed assignment and frees its inflight
// slot. Lock order is always c.mu before w.mu (nextRange nests them that
// way), so the broadcast happens after w.mu is released.
func (w *workerConn) handleRangeDone(r *rbuf) error {
	lo, hi, err := decodeRange(r)
	if err != nil {
		return err
	}
	w.mu.Lock()
	found := false
	for i, a := range w.assigned {
		if a.lo == lo && a.hi == hi {
			if a.watermark != a.hi {
				w.mu.Unlock()
				return fmt.Errorf("range [%d,%d) done with %d results missing", lo, hi, a.hi-a.watermark)
			}
			w.assigned = append(w.assigned[:i], w.assigned[i+1:]...)
			found = true
			break
		}
	}
	w.mu.Unlock()
	if !found {
		return fmt.Errorf("range [%d,%d) done but was never assigned here", lo, hi)
	}
	w.c.mu.Lock()
	w.c.cond.Broadcast()
	w.c.mu.Unlock()
	return nil
}

// assignmentFor finds the in-flight assignment covering a result index.
func (w *workerConn) assignmentFor(idx int) *assignment {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, a := range w.assigned {
		if a.lo <= idx && idx < a.hi {
			return a
		}
	}
	return nil
}

// abandon requeues the unfinished remainder of this worker's assignments
// after its connection died. Delivered results stay delivered — the
// replacement worker resumes each range at its watermark — so the merged
// output is unchanged by the failure. A range reassigned more than
// Options.Retries times fails the run, as does losing the last worker.
func (w *workerConn) abandon(ctx context.Context, sessionErr error) {
	w.mu.Lock()
	assigned := w.assigned
	w.assigned = nil
	w.mu.Unlock()

	c := w.c
	if sessionErr == nil || ctx.Err() != nil || c.isFinished() {
		return
	}
	// A worker failure alone does not fail the run — the remainders are
	// requeued and the run succeeds if a surviving worker absorbs them.
	// Only exhausting the retry budget (or, in runWorker, losing the last
	// worker) turns the failure into a run error.
	for _, a := range assigned {
		if a.watermark >= a.hi {
			continue
		}
		r := jobRange{lo: a.watermark, hi: a.hi, attempts: a.attempts + 1}
		if r.attempts > c.opts.Retries {
			c.fail(fmt.Errorf("sweepnet: range [%d,%d) failed %d times (last: %w)", r.lo, r.hi, r.attempts, sessionErr))
			return
		}
		c.mu.Lock()
		i := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].lo >= r.lo })
		c.pending = append(c.pending, jobRange{})
		copy(c.pending[i+1:], c.pending[i:])
		c.pending[i] = r
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

func (c *coordinator) isFinished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished
}
