package sweepnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/sweep"
)

// ServerOptions tunes a sweepd worker.
type ServerOptions struct {
	// Shards is the per-range shard count handed to the local sweep engine.
	// <=0 means GOMAXPROCS.
	Shards int
	// Window is the local engine's reorder window. <=0 takes the engine
	// default (4 × shards).
	Window int
	// Heartbeat is how often the worker proves liveness while a range is
	// executing. <=0 means 2s; it must stay well under the coordinator's
	// HeartbeatTimeout.
	Heartbeat time.Duration
	// BatchResults is how many results accumulate before a frameResults
	// flush. <=0 means 64.
	BatchResults int
	// Memo switches the local engine's record-once/replay-many trace
	// memoization (default on — sweep.MemoOn is the zero value).
	// Memoization only changes how the worker executes jobs, never their
	// reports, so remote output stays byte-identical to a local run either
	// way, and the memoized corpora persist across ranges and connections
	// with the shared Runner.
	Memo sweep.MemoMode
	// MemoBudgetBytes bounds the worker's resident memoized corpora
	// (<=0 means sweep.DefaultMemoBudgetBytes).
	MemoBudgetBytes int64
	// Runner, when non-nil, is the pooled execution state to serve with
	// instead of a fresh one — cmd/sweepd passes its own so it can report
	// memo counters after draining.
	Runner *sweep.Runner
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.BatchResults <= 0 {
		o.BatchResults = 64
	}
	return o
}

// batchBytes flushes a result batch early once its payload reaches this
// size, bounding frame memory on both ends independent of BatchResults.
const batchBytes = 32 << 10

// Serve accepts coordinator connections on ln until ctx is cancelled, then
// drains gracefully: the listener closes immediately, every session finishes
// the range it is executing (abandoning the rest of its queue), and Serve
// returns once the last session is gone. The coordinator reassigns whatever
// a draining worker abandons, so a rolling restart costs duplicate-free
// retries, not a failed run.
//
// One pooled sweep.Runner is shared by every session for the lifetime of the
// server: shards (dynopt.Scratch, Resettable selectors) and compiled
// programs are built once and reused across connections and ranges.
func Serve(ctx context.Context, ln net.Listener, opts ServerOptions) error {
	opts = opts.withDefaults()
	runner := opts.Runner
	if runner == nil {
		runner = sweep.NewRunner()
	}
	lnClosed := make(chan struct{})
	go func() {
		<-ctx.Done()
		ln.Close()
		close(lnClosed)
	}()
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			wg.Wait()
			return fmt.Errorf("sweepnet: accept: %w", err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			runSession(ctx, conn, runner, opts)
		}(conn)
	}
	wg.Wait()
	<-lnClosed
	return ctx.Err()
}

// session is the per-connection worker state.
type session struct {
	conn   net.Conn
	runner *sweep.Runner
	opts   ServerOptions

	wmu sync.Mutex // serializes frame writes (results, heartbeats, errors)
	fw  *frameWriter

	mu       sync.Mutex
	cond     sync.Cond
	grid     sweep.Grid
	haveGrid bool
	queue    []jobRange // ranges accepted but not yet executed
	closed   bool       // connection dead or reader done
	draining bool       // server shutting down: finish current range, then hang up
}

// runSession speaks the worker side of the protocol on one connection.
// The reader (this goroutine) accepts the grid and range assignments; the
// executor goroutine runs queued ranges through the shared runner and
// streams results; the heartbeater keeps the coordinator's read deadline at
// bay during long ranges.
func runSession(srvCtx context.Context, conn net.Conn, runner *sweep.Runner, opts ServerOptions) {
	defer conn.Close()
	s := &session{conn: conn, runner: runner, opts: opts, fw: newFrameWriter(conn)}
	s.cond.L = &s.mu

	// sctx aborts in-flight range execution when the connection dies. It is
	// deliberately not a child of srvCtx: a drain lets the current range
	// finish.
	sctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	w := s.fw.begin(frameHello)
	w.putU(protoVersion)
	w.putU(uint64(opts.Shards))
	if s.fw.end() != nil || s.fw.flush() != nil {
		return
	}

	stop := make(chan struct{})
	defer close(stop)
	go s.heartbeater(stop)
	go func() {
		select {
		case <-srvCtx.Done():
			s.mu.Lock()
			s.draining = true
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-stop:
		}
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.executor(sctx)
	}()

	s.readLoop()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	cancel() // abort any in-flight range; its results are going nowhere
	wg.Wait()
}

// readLoop consumes coordinator frames until the connection dies.
func (s *session) readLoop() {
	fr := newFrameReader(s.conn)
	for {
		t, r, err := fr.next()
		if err != nil {
			return
		}
		switch t {
		case frameGrid:
			g, err := decodeGrid(&r)
			if err != nil {
				s.sendErr(fmt.Errorf("bad grid: %w", err))
				return
			}
			s.mu.Lock()
			dup := s.haveGrid
			if !dup {
				s.grid = g
				s.haveGrid = true
			}
			s.mu.Unlock()
			if dup {
				s.sendErr(errors.New("duplicate grid frame"))
				return
			}
		case frameRange:
			lo, hi, err := decodeRange(&r)
			if err != nil {
				s.sendErr(fmt.Errorf("bad range: %w", err))
				return
			}
			s.mu.Lock()
			ok := s.haveGrid && hi <= s.grid.NumJobs()
			if ok {
				s.queue = append(s.queue, jobRange{lo: lo, hi: hi})
				s.cond.Broadcast()
			}
			s.mu.Unlock()
			if !ok {
				s.sendErr(fmt.Errorf("range [%d,%d) before grid or outside it", lo, hi))
				return
			}
		default:
			s.sendErr(fmt.Errorf("unexpected frame %#x", t))
			return
		}
	}
}

// executor drains the range queue, lowest range first — a reassigned low
// range must not starve behind higher ones, since the coordinator's merge
// frontier (and therefore further admission) waits on it.
func (s *session) executor(sctx context.Context) {
	for {
		r, grid, ok := s.nextQueued()
		if !ok {
			// The queue is cut loose: the connection is already dead, or a
			// drain arrived while this session was idle. Hang up either way —
			// without the close, a drained-but-idle session keeps
			// heartbeating while its read loop accepts ranges nobody will
			// execute, and both the coordinator and Serve's drain wait
			// forever (TestServeDrainIdleSession).
			s.conn.Close()
			return
		}
		stream := &resultStream{s: s}
		err := s.runner.RunRange(sctx, grid, r.lo, r.hi, sweep.Options{
			Shards:          s.opts.Shards,
			Window:          s.opts.Window,
			Memo:            s.opts.Memo,
			MemoBudgetBytes: s.opts.MemoBudgetBytes,
		}, stream)
		if err != nil {
			if sctx.Err() != nil {
				return // connection gone; the coordinator reassigns
			}
			s.sendErr(fmt.Errorf("range [%d,%d): %w", r.lo, r.hi, err))
			s.conn.Close()
			return
		}
		s.wmu.Lock()
		stream.flushLocked()
		encodeRange(s.fw.begin(frameRangeDone), r.lo, r.hi)
		werr := s.fw.end()
		if werr == nil {
			werr = s.fw.flush()
		}
		s.wmu.Unlock()
		if werr != nil {
			return
		}
		s.mu.Lock()
		drain := s.draining
		s.mu.Unlock()
		if drain {
			// Graceful drain: current range delivered, abandon the rest.
			s.conn.Close()
			return
		}
	}
}

// nextQueued blocks for the lowest queued range. ok is false once the
// connection is closed, or once a drain is requested and the queue has been
// cut loose.
func (s *session) nextQueued() (jobRange, sweep.Grid, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return jobRange{}, sweep.Grid{}, false
		}
		if len(s.queue) > 0 {
			min := 0
			for i, r := range s.queue {
				if r.lo < s.queue[min].lo {
					min = i
				}
			}
			r := s.queue[min]
			s.queue = append(s.queue[:min], s.queue[min+1:]...)
			return r, s.grid, true
		}
		if s.draining {
			return jobRange{}, sweep.Grid{}, false
		}
		s.cond.Wait()
	}
}

// heartbeater writes a liveness frame every Heartbeat interval until the
// session ends. Write errors are ignored: the reader notices the dead
// connection.
func (s *session) heartbeater(stop <-chan struct{}) {
	t := time.NewTicker(s.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.wmu.Lock()
			s.fw.begin(frameHeartbeat)
			if s.fw.end() == nil {
				s.fw.flush()
			}
			s.wmu.Unlock()
		}
	}
}

// sendErr reports a fatal job or protocol error to the coordinator.
func (s *session) sendErr(err error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	w := s.fw.begin(frameJobErr)
	w.putStr(err.Error())
	if s.fw.end() == nil {
		s.fw.flush()
	}
}

// resultStream adapts the local engine's ordered result stream to batched
// frameResults frames. Deliver appends to a reused encode buffer and flushes
// on batch boundaries; the whole steady-state path is allocation-free.
type resultStream struct {
	s   *session
	buf wbuf
	n   int
}

// Deliver implements sweep.ResultSink. Result indices are already global
// grid indices (RunRange enumerates [lo, hi) of the full grid), which is
// exactly what the coordinator's merge expects.
//
//lint:hotpath per-result streaming on the worker
func (rs *resultStream) Deliver(r sweep.Result) {
	encodeResult(&rs.buf, r.Index, &r.Report)
	rs.n++
	if rs.n >= rs.s.opts.BatchResults || len(rs.buf.b) >= batchBytes {
		rs.s.wmu.Lock()
		rs.flushLocked()
		rs.s.wmu.Unlock()
	}
}

// flushLocked frames and writes the pending batch; the caller holds wmu.
// Write errors are dropped here — the session reader owns failure handling,
// and a broken connection surfaces there as the session closing.
func (rs *resultStream) flushLocked() {
	if rs.n == 0 {
		return
	}
	fw := rs.s.fw
	w := fw.begin(frameResults)
	w.putU(uint64(rs.n))
	w.putRaw(rs.buf.b)
	if fw.end() == nil {
		fw.flush()
	}
	rs.buf.reset()
	rs.n = 0
}
