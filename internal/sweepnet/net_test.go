package sweepnet

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// testGrid is small enough for fast tests but spans several workloads,
// selectors, and configs, so ranges land on different workers.
func testGrid() sweep.Grid {
	limited := sweep.Config{Params: core.DefaultParams(), CacheLimitBytes: 2000}
	return sweep.Grid{
		Workloads: []string{"gzip", "vpr", "mcf"},
		Scale:     30,
		Selectors: []string{"net", "lei"},
		Configs:   []sweep.Config{{Params: core.DefaultParams()}, limited},
	}
}

// startWorker serves the sweepnet protocol on a loopback listener, returning
// its address and a shutdown function that drains it.
func startWorker(t *testing.T, opts ServerOptions) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, ln, opts)
	}()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not drain within 10s")
		}
	}
}

// checkGoroutines fails the test if the goroutine count has not returned to
// (near) the baseline. Polled: connection teardown is asynchronous.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteMatchesLocal is the core determinism property: a grid run over
// two wire workers delivers exactly the results of a local single-process
// run, in the same order.
func TestRemoteMatchesLocal(t *testing.T) {
	g := testGrid()
	var local sweep.CollectSink
	if err := sweep.RunGrid(context.Background(), g, sweep.Options{Shards: 2}, &local); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	addr1, stop1 := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	addr2, stop2 := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	var remote sweep.CollectSink
	err := RunGrid(context.Background(), []string{addr1, addr2}, g,
		Options{Chunk: 2}, &remote)
	if err != nil {
		t.Fatal(err)
	}
	stop1()
	stop2()
	checkGoroutines(t, baseline)

	if len(remote.Results) != g.NumJobs() {
		t.Fatalf("remote run delivered %d results, want %d", len(remote.Results), g.NumJobs())
	}
	if !reflect.DeepEqual(remote.Results, local.Results) {
		for i := range local.Results {
			if !reflect.DeepEqual(remote.Results[i], local.Results[i]) {
				t.Fatalf("result %d differs\nremote %+v\nlocal  %+v", i, remote.Results[i], local.Results[i])
			}
		}
		t.Fatal("remote results differ from local")
	}
}

// killingProxy forwards one TCP connection to a backend and abruptly closes
// both sides after limit bytes of backend→coordinator traffic — a worker
// dying mid-stream, as seen from the coordinator.
type killingProxy struct {
	ln      net.Listener
	backend string
	limit   int64
	killed  atomic.Bool
}

func startKillingProxy(t *testing.T, backend string, limit int64) *killingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killingProxy{ln: ln, backend: backend, limit: limit}
	go p.run()
	return p
}

func (p *killingProxy) addr() string { return p.ln.Addr().String() }

func (p *killingProxy) run() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *killingProxy) serve(conn net.Conn) {
	up, err := net.Dial("tcp", p.backend)
	if err != nil {
		conn.Close()
		return
	}
	var once sync.Once
	kill := func() {
		once.Do(func() {
			p.killed.Store(true)
			conn.Close()
			up.Close()
		})
	}
	go func() {
		io.Copy(up, conn) // coordinator → worker, unlimited
		kill()
	}()
	// worker → coordinator, cut off after limit bytes.
	io.Copy(conn, io.LimitReader(up, p.limit))
	kill()
}

// TestWorkerKillReassign kills one of two workers mid-stream and checks the
// run still completes with output identical to a local run: the dead
// worker's unfinished ranges are reassigned from their watermarks, with no
// duplicate or missing result.
func TestWorkerKillReassign(t *testing.T) {
	g := testGrid()
	var local sweep.CollectSink
	if err := sweep.RunGrid(context.Background(), g, sweep.Options{Shards: 2}, &local); err != nil {
		t.Fatal(err)
	}

	addr1, stop1 := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	addr2, stop2 := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	defer stop1()
	defer stop2()
	// Cut the second worker's stream a few bytes past its hello: the first
	// result batch it flushes dies mid-frame, while it still holds assigned
	// ranges, so the coordinator must reassign from the watermark.
	proxy := startKillingProxy(t, addr2, 100)
	defer proxy.ln.Close()

	var remote sweep.CollectSink
	err := RunGrid(context.Background(), []string{addr1, proxy.addr()}, g,
		Options{Chunk: 2}, &remote)
	if err != nil {
		t.Fatalf("run with one killed worker failed: %v", err)
	}
	if !proxy.killed.Load() {
		t.Fatal("proxy never killed the connection; raise the grid size or lower the byte limit")
	}
	if !reflect.DeepEqual(remote.Results, local.Results) {
		t.Fatalf("output after worker kill differs from local run (%d vs %d results)",
			len(remote.Results), len(local.Results))
	}
}

// TestCoordinatorCancelNoLeaks cancels a run mid-flight and checks RunGrid
// returns the context error promptly with no goroutines left behind.
func TestCoordinatorCancelNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addr, stop := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	g := testGrid()
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	sink := sweep.FuncSink(func(sweep.Result) {
		if n.Add(1) == 2 {
			cancel() // cancel while results are in flight
		}
	})
	err := RunGrid(ctx, []string{addr}, g, Options{Chunk: 2}, sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	stop()
	checkGoroutines(t, baseline)
}

// TestJobErrorFailsFast: a grid naming an unknown workload makes the worker
// report a job error and the whole run fail quickly.
func TestJobErrorFailsFast(t *testing.T) {
	addr, stop := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	defer stop()
	g := testGrid()
	g.Workloads = []string{"no-such-workload"}
	err := RunGrid(context.Background(), []string{addr}, g, Options{}, nil)
	if err == nil {
		t.Fatal("run over an unknown workload succeeded")
	}
}

// TestDialFailureFailsFast: an unreachable worker address fails the run
// rather than hanging.
func TestDialFailureFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more
	runErr := RunGrid(context.Background(), []string{addr}, testGrid(), Options{}, nil)
	if runErr == nil {
		t.Fatal("run against a dead address succeeded")
	}
}

// TestServeDrainIdle: cancelling an idle server returns promptly.
func TestServeDrainIdle(t *testing.T) {
	_, stop := startWorker(t, ServerOptions{})
	stop()
}

// TestServeDrainIdleSession: a drain arriving while a connected session's
// queue is empty must hang up the connection and let Serve return — not
// leave the session heartbeating with a read loop that accepts ranges
// nobody will execute.
func TestServeDrainIdleSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, ln, ServerOptions{Shards: 1, Heartbeat: 50 * time.Millisecond})
	}()

	// Act as the coordinator: handshake and ship the grid, assign nothing.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := newFrameReader(conn)
	if ft, _, err := fr.next(); err != nil || ft != frameHello {
		t.Fatalf("hello: frame %#x, err %v", ft, err)
	}
	fw := newFrameWriter(conn)
	encodeGrid(fw.begin(frameGrid), testGrid())
	if err := fw.end(); err != nil {
		t.Fatal(err)
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}

	cancel() // drain while the session's queue is empty
	// The worker must hang up: in-flight heartbeats drain, then EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, _, err := fr.next(); err != nil {
			break
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after draining an idle session")
	}
}

// TestFrameWriterRejectsOversized: a payload over maxFrame errors at the
// writer (errFrameTooLarge) instead of going on the wire for the reader to
// drop as corruption.
func TestFrameWriterRejectsOversized(t *testing.T) {
	fw := newFrameWriter(io.Discard)
	w := fw.begin(frameGrid)
	w.b = append(w.b, make([]byte, maxFrame)...)
	if err := fw.end(); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("end accepted a %d-byte payload: %v", len(w.b), err)
	}
}

// TestRemoteTraceWorkloadMatchesLocal extends the determinism property to
// the trace-corpus workload class: a grid mixing trace:<path> corpora with
// live workloads, distributed over two wire workers, delivers byte-for-byte
// the results of a local run. The workers resolve the trace path on their
// own filesystem (shared with the coordinator here, as docs/SWEEPD.md
// requires for trace workloads).
func TestRemoteTraceWorkloadMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/gzip.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	prog := workloads.MustGet("gzip").Build(30)
	_, err = tracestream.Record(prog, "gzip", 30, vm.Config{}, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	g := sweep.Grid{
		Workloads: []string{"trace:" + path, "vpr"},
		Scale:     30,
		Selectors: []string{"net", "lei", "adaptive"},
	}
	var local sweep.CollectSink
	if err := sweep.RunGrid(context.Background(), g, sweep.Options{Shards: 2}, &local); err != nil {
		t.Fatal(err)
	}
	addr1, stop1 := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	addr2, stop2 := startWorker(t, ServerOptions{Shards: 2, Heartbeat: 50 * time.Millisecond})
	defer stop1()
	defer stop2()
	var remote sweep.CollectSink
	if err := RunGrid(context.Background(), []string{addr1, addr2}, g, Options{Chunk: 1}, &remote); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote.Results, local.Results) {
		t.Fatal("remote trace-workload results differ from local")
	}
}
