// Package sweepnet distributes a sweep grid across machines. A coordinator
// partitions the grid's job-index space into contiguous ranges and hands
// them to TCP workers; each worker rebuilds its jobs locally
// (sweep.Grid.JobAt), runs them through one persistent pooled sweep.Runner
// — per-shard dynopt.Scratch, Resettable selectors, and programs built once
// per (workload, scale) spec survive across ranges — and streams batched
// binary results back. The coordinator merges the streams through the same
// bounded reorder-window sweep.OrderedSink the in-process engine uses, so
// output order is the grid enumeration regardless of worker count, timing,
// or mid-run worker failures: a dead worker's ranges are reassigned from
// their delivery watermark and the merged output is byte-identical to a
// single-process run.
//
// The wire format is a compact binary codec in the idiom of the Figure 14
// bit coder (internal/core): append-only reusable buffers, chunked
// bounds-checked reads, length-prefixed frames, varint-packed integers,
// fixed 64-bit floats, and results batched per frame to amortize syscalls.
// Steady-state encode and decode of a result batch is allocation-free
// (TestCodecSteadyStateAllocFree). docs/SWEEPD.md specifies the protocol.
package sweepnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol constants. A frame on the wire is a uvarint payload length
// followed by the payload; payload byte 0 is the frame type.
const (
	protoVersion = 1

	frameHello     byte = 0x01 // worker → coordinator: protocol version, shard count
	frameGrid      byte = 0x02 // coordinator → worker: the sweep grid
	frameRange     byte = 0x03 // coordinator → worker: job-index range [lo, hi)
	frameResults   byte = 0x04 // worker → coordinator: batched job results
	frameRangeDone byte = 0x05 // worker → coordinator: range [lo, hi) complete
	frameJobErr    byte = 0x06 // worker → coordinator: a job failed (fail-fast)
	frameHeartbeat byte = 0x07 // worker → coordinator: liveness
)

// maxFrame bounds accepted frame payloads; larger prefixes are treated as
// stream corruption rather than trusted as allocation sizes.
const maxFrame = 1 << 22

// errFrameTooLarge rejects an over-maxFrame payload at the writer, so the
// sender diagnoses an oversized frame (in practice: a grid whose config
// axis is too big for the one-frame grid encoding) instead of the receiver
// dropping the connection as corrupt.
var errFrameTooLarge = fmt.Errorf("sweepnet: frame payload exceeds the %d-byte frame limit", maxFrame)

// Decoder errors. Sentinels, not fmt.Errorf: decode runs on the hot path
// and malformed input must error without panicking (FuzzJobCodec).
var (
	errTruncated = errors.New("sweepnet: truncated frame payload")
	errOverflow  = errors.New("sweepnet: varint overflows 64 bits")
	errCount     = errors.New("sweepnet: element count exceeds frame size")
)

// wbuf is an append-only encode buffer, reset and reused across frames so
// steady-state encoding performs no allocation once it reaches the run's
// high-water size.
type wbuf struct {
	b []byte
}

func (w *wbuf) reset() { w.b = w.b[:0] }

//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func (w *wbuf) putByte(v byte) { w.b = append(w.b, v) }

// putU appends an unsigned value, LEB128 7-bit groups, low group first.
//
//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func (w *wbuf) putU(v uint64) {
	for v >= 0x80 {
		w.b = append(w.b, byte(v)|0x80)
		v >>= 7
	}
	w.b = append(w.b, byte(v))
}

// putI appends a signed value, zigzag-mapped so small magnitudes of either
// sign stay short.
//
//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func (w *wbuf) putI(v int64) {
	w.putU(uint64(v)<<1 ^ uint64(v>>63))
}

// putF appends a float64 as its fixed 8-byte IEEE 754 image, big-endian,
// so values round-trip bit-exactly and the merged remote output stays
// byte-identical to a local run.
//
//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func (w *wbuf) putF(v float64) {
	bits := math.Float64bits(v)
	w.b = append(w.b, byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func (w *wbuf) putBool(v bool) {
	if v {
		w.putByte(1)
		return
	}
	w.putByte(0)
}

// putStr appends a length-prefixed string.
//
//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func (w *wbuf) putStr(s string) {
	w.putU(uint64(len(s)))
	w.b = append(w.b, s...)
}

// putRaw appends pre-encoded bytes (a batched payload into a frame).
//
//lint:hotpath result-batch framing (TestCodecSteadyStateAllocFree)
func (w *wbuf) putRaw(p []byte) {
	w.b = append(w.b, p...)
}

// rbuf consumes one frame payload front to back. Every read is
// bounds-checked: running past the end returns errTruncated, oversized
// counts errCount — malformed frames must error, never panic.
type rbuf struct {
	b   []byte
	off int
}

func (r *rbuf) rem() int { return len(r.b) - r.off }

//lint:hotpath per-result wire decoding (TestCodecSteadyStateAllocFree)
func (r *rbuf) u() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.off >= len(r.b) {
			return 0, errTruncated
		}
		c := r.b[r.off]
		r.off++
		if shift == 63 && c > 1 {
			return 0, errOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, errOverflow
		}
	}
}

//lint:hotpath per-result wire decoding (TestCodecSteadyStateAllocFree)
func (r *rbuf) i() (int64, error) {
	u, err := r.u()
	return int64(u>>1) ^ -int64(u&1), err
}

//lint:hotpath per-result wire decoding (TestCodecSteadyStateAllocFree)
func (r *rbuf) f() (float64, error) {
	if r.rem() < 8 {
		return 0, errTruncated
	}
	bits := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(bits), nil
}

//lint:hotpath per-result wire decoding (TestCodecSteadyStateAllocFree)
func (r *rbuf) bool() (bool, error) {
	if r.off >= len(r.b) {
		return false, errTruncated
	}
	c := r.b[r.off]
	r.off++
	if c > 1 {
		return false, fmt.Errorf("sweepnet: bool byte %#x", c)
	}
	return c == 1, nil
}

// strBytes reads a length-prefixed string, returning a view into the frame
// buffer (valid until the next frame is read).
//
//lint:hotpath per-result wire decoding (TestCodecSteadyStateAllocFree)
func (r *rbuf) strBytes() ([]byte, error) {
	n, err := r.u()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.rem()) {
		return nil, errTruncated
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// count reads an element count and validates it against the bytes left in
// the frame, given each element's minimum encoded size — a corrupted count
// must not become an allocation size.
//
//lint:hotpath per-batch wire decoding (TestCodecSteadyStateAllocFree)
func (r *rbuf) count(minElem int) (int, error) {
	n, err := r.u()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.rem())/uint64(minElem) {
		return 0, errCount
	}
	return int(n), nil
}

// frameWriter writes length-prefixed frames to one connection through a
// reused payload buffer and a bufio.Writer, so framing a batch costs no
// allocation and one syscall per flush.
type frameWriter struct {
	w       *bufio.Writer
	payload wbuf
	hdr     [binary.MaxVarintLen64]byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriter(w)}
}

// begin starts a frame of the given type, returning the payload buffer to
// encode into.
func (fw *frameWriter) begin(t byte) *wbuf {
	fw.payload.reset()
	fw.payload.putByte(t)
	return &fw.payload
}

// end length-prefixes the pending payload and writes the frame into the
// buffered writer. A payload the reader would reject (frameReader.next caps
// at maxFrame) errors here instead of going on the wire.
//
//lint:hotpath result-batch framing (TestCodecSteadyStateAllocFree)
func (fw *frameWriter) end() error {
	if len(fw.payload.b) > maxFrame {
		return fmt.Errorf("%w (%d-byte payload)", errFrameTooLarge, len(fw.payload.b))
	}
	n := binary.PutUvarint(fw.hdr[:], uint64(len(fw.payload.b)))
	if _, err := fw.w.Write(fw.hdr[:n]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.payload.b)
	return err
}

// flush pushes buffered frames to the connection.
func (fw *frameWriter) flush() error { return fw.w.Flush() }

// frameReader reads length-prefixed frames from one connection into a
// reused buffer; the returned payload aliases it and is valid until the
// next call.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReader(r)}
}

// next reads one frame, returning its type and a payload reader.
//
//lint:hotpath result-batch deframing (TestCodecSteadyStateAllocFree)
func (fr *frameReader) next() (byte, rbuf, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return 0, rbuf{}, err
	}
	if n == 0 || n > maxFrame {
		return 0, rbuf{}, fmt.Errorf("sweepnet: frame payload size %d out of range", n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, rbuf{}, err
	}
	return fr.buf[0], rbuf{b: fr.buf[1:]}, nil
}
