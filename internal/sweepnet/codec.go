package sweepnet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sweep"
)

// Structure-pinning constants: the codec packs struct fields positionally,
// so it must be updated in lockstep with the structs it serializes.
// TestCodecCoversStructs fails when any of these drifts from the live
// definition, and the reflection round-trip test catches a field encoded
// under the wrong slot.
const (
	paramsFieldCount = 12 // core.Params: 9 ints + 3 ablation bools
	reportFieldCount = 34 // metrics.Report
	// reportFloatCount is how many Report fields are float64s, which encode
	// as fixed 8-byte values rather than one-byte-minimum varints.
	reportFloatCount = 8
	// minConfigBytes is the smallest encoding of one sweep.Config: ten
	// one-byte varints plus the ablation flag byte.
	minConfigBytes = 11
	// minResultBytes is the smallest encoding of one result: index varint,
	// the two string length prefixes, eight bytes per float, the bool byte,
	// and one byte for each remaining varint field. The zero value encodes
	// to exactly this size — TestCodecCoversStructs pins that equality so
	// the handleResults batch bound can't drift from the codec.
	minResultBytes = 1 + 2 + 8*reportFloatCount + 1 + (reportFieldCount - 2 - reportFloatCount - 1)
)

// encodeGrid packs a grid spec: each axis is a counted list with
// varint-packed values, so the one-time grid frame stays small even for
// cross products enumerating millions of cells.
func encodeGrid(w *wbuf, g sweep.Grid) {
	w.putU(uint64(len(g.Workloads)))
	for _, s := range g.Workloads {
		w.putStr(s)
	}
	w.putI(int64(g.Scale))
	w.putU(uint64(len(g.Selectors)))
	for _, s := range g.Selectors {
		w.putStr(s)
	}
	w.putU(uint64(len(g.Configs)))
	for _, c := range g.Configs {
		encodeConfig(w, c)
	}
}

func decodeGrid(r *rbuf) (sweep.Grid, error) {
	var g sweep.Grid
	nw, err := r.count(1)
	if err != nil {
		return g, err
	}
	if nw > 0 {
		g.Workloads = make([]string, nw)
		for i := range g.Workloads {
			b, err := r.strBytes()
			if err != nil {
				return g, err
			}
			g.Workloads[i] = string(b)
		}
	}
	scale, err := r.i()
	if err != nil {
		return g, err
	}
	g.Scale = int(scale)
	ns, err := r.count(1)
	if err != nil {
		return g, err
	}
	if ns > 0 {
		g.Selectors = make([]string, ns)
		for i := range g.Selectors {
			b, err := r.strBytes()
			if err != nil {
				return g, err
			}
			g.Selectors[i] = string(b)
		}
	}
	nc, err := r.count(minConfigBytes)
	if err != nil {
		return g, err
	}
	if nc > 0 {
		g.Configs = make([]sweep.Config, nc)
		for i := range g.Configs {
			if g.Configs[i], err = decodeConfig(r); err != nil {
				return g, err
			}
		}
	}
	return g, nil
}

// Ablation flag bits of the config encoding.
const (
	flagAblateLEIExitGrowth   = 1 << 0
	flagAblateRejoinPaths     = 1 << 1
	flagAblateNETBackwardStop = 1 << 2
)

func encodeConfig(w *wbuf, c sweep.Config) {
	w.putI(int64(c.CacheLimitBytes))
	p := c.Params
	w.putI(int64(p.NETThreshold))
	w.putI(int64(p.LEIThreshold))
	w.putI(int64(p.HistoryCap))
	w.putI(int64(p.TProf))
	w.putI(int64(p.TMin))
	w.putI(int64(p.MaxTraceInstrs))
	w.putI(int64(p.MaxTraceBlocks))
	w.putI(int64(p.PhaseWindow))
	w.putI(int64(p.PhaseDwell))
	var flags byte
	if p.AblateLEIExitGrowth {
		flags |= flagAblateLEIExitGrowth
	}
	if p.AblateRejoinPaths {
		flags |= flagAblateRejoinPaths
	}
	if p.AblateNETBackwardStop {
		flags |= flagAblateNETBackwardStop
	}
	w.putByte(flags)
}

func decodeConfig(r *rbuf) (sweep.Config, error) {
	var c sweep.Config
	// Ten signed fields in declaration order, then the flag byte.
	dst := [10]*int{
		&c.CacheLimitBytes,
		&c.Params.NETThreshold, &c.Params.LEIThreshold, &c.Params.HistoryCap,
		&c.Params.TProf, &c.Params.TMin, &c.Params.MaxTraceInstrs, &c.Params.MaxTraceBlocks,
		&c.Params.PhaseWindow, &c.Params.PhaseDwell,
	}
	for _, p := range dst {
		v, err := r.i()
		if err != nil {
			return c, err
		}
		*p = int(v)
	}
	if r.off >= len(r.b) {
		return c, errTruncated
	}
	flags := r.b[r.off]
	r.off++
	if flags&^byte(flagAblateLEIExitGrowth|flagAblateRejoinPaths|flagAblateNETBackwardStop) != 0 {
		return c, fmt.Errorf("sweepnet: unknown ablation flags %#x", flags)
	}
	c.Params.AblateLEIExitGrowth = flags&flagAblateLEIExitGrowth != 0
	c.Params.AblateRejoinPaths = flags&flagAblateRejoinPaths != 0
	c.Params.AblateNETBackwardStop = flags&flagAblateNETBackwardStop != 0
	return c, nil
}

// encodeRange packs a frameRange or frameRangeDone payload.
func encodeRange(w *wbuf, lo, hi int) {
	w.putU(uint64(lo))
	w.putU(uint64(hi))
}

func decodeRange(r *rbuf) (lo, hi int, err error) {
	ulo, err := r.u()
	if err != nil {
		return 0, 0, err
	}
	uhi, err := r.u()
	if err != nil {
		return 0, 0, err
	}
	if ulo > uhi || uhi > uint64(int(^uint(0)>>1)) {
		return 0, 0, fmt.Errorf("sweepnet: job range [%d,%d) malformed", ulo, uhi)
	}
	return int(ulo), int(uhi), nil
}

// encodeResult appends one completed job to a result batch: the global grid
// index and every metrics.Report field in declaration order. The coordinator
// rebuilds the Job side from the index (Grid.JobAt), so a result costs the
// report plus one varint.
//
//lint:hotpath per-result wire encoding (TestCodecSteadyStateAllocFree)
func encodeResult(w *wbuf, idx int, rep *metrics.Report) {
	w.putU(uint64(idx))
	w.putStr(rep.Workload)
	w.putStr(rep.Selector)
	w.putU(rep.TotalInstrs)
	w.putU(rep.CacheInstrs)
	w.putF(rep.HitRate)
	w.putU(rep.Transitions)
	w.putU(rep.PageTransitions)
	w.putU(rep.TransitionReach)
	w.putF(rep.AvgTransitionBytes)
	w.putU(rep.CacheEnters)
	w.putU(rep.CacheExits)
	w.putU(rep.InterpBranches)
	w.putI(int64(rep.Regions))
	w.putI(int64(rep.CodeExpansion))
	w.putI(int64(rep.Stubs))
	w.putI(int64(rep.EstimatedBytes))
	w.putF(rep.AvgRegionInstrs)
	w.putI(int64(rep.SpannedCycles))
	w.putF(rep.SpannedRatio)
	w.putU(rep.Traversals)
	w.putU(rep.CycleTraversals)
	w.putF(rep.ExecutedRatio)
	w.putI(int64(rep.CoverSet90))
	w.putBool(rep.CoverSet90OK)
	w.putI(int64(rep.ExitDominated))
	w.putF(rep.ExitDominatedRatio)
	w.putI(int64(rep.ExitDomDupInstrs))
	w.putF(rep.ExitDomDupInstrsRatio)
	w.putI(int64(rep.Links))
	w.putI(int64(rep.CountersHighWater))
	w.putU(rep.CounterAllocs)
	w.putI(int64(rep.ObservedBytesHighWater))
	w.putU(rep.ObservedTraces)
	w.putF(rep.ObservedPctOfCache)
}

// decodeResult reads one result into res (Job left untouched — the caller
// owns index → job reconstruction). Report strings are interned so
// steady-state decoding is allocation-free: a grid has a bounded set of
// distinct workload and selector names however many results stream through.
//
//lint:hotpath per-result wire decoding (TestCodecSteadyStateAllocFree)
func decodeResult(r *rbuf, in *interner, res *sweep.Result) error {
	idx, err := r.u()
	if err != nil {
		return err
	}
	if idx > uint64(int(^uint(0)>>1)) {
		return fmt.Errorf("sweepnet: result index %d overflows int", idx)
	}
	res.Index = int(idx)
	rep := &res.Report
	b, err := r.strBytes()
	if err != nil {
		return err
	}
	rep.Workload = in.intern(b)
	if b, err = r.strBytes(); err != nil {
		return err
	}
	rep.Selector = in.intern(b)
	// Mirror encodeResult field for field; the helpers below keep the first
	// decode error and turn the remaining reads into no-ops, so the body
	// stays a flat declaration-order list.
	//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly in this frame)
	u := func(dst *uint64) {
		if err == nil {
			*dst, err = r.u()
		}
	}
	//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly in this frame)
	i := func(dst *int) {
		if err == nil {
			var v int64
			if v, err = r.i(); err == nil {
				*dst = int(v)
			}
		}
	}
	//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly in this frame)
	f := func(dst *float64) {
		if err == nil {
			*dst, err = r.f()
		}
	}
	u(&rep.TotalInstrs)
	u(&rep.CacheInstrs)
	f(&rep.HitRate)
	u(&rep.Transitions)
	u(&rep.PageTransitions)
	u(&rep.TransitionReach)
	f(&rep.AvgTransitionBytes)
	u(&rep.CacheEnters)
	u(&rep.CacheExits)
	u(&rep.InterpBranches)
	i(&rep.Regions)
	i(&rep.CodeExpansion)
	i(&rep.Stubs)
	i(&rep.EstimatedBytes)
	f(&rep.AvgRegionInstrs)
	i(&rep.SpannedCycles)
	f(&rep.SpannedRatio)
	u(&rep.Traversals)
	u(&rep.CycleTraversals)
	f(&rep.ExecutedRatio)
	i(&rep.CoverSet90)
	if err == nil {
		rep.CoverSet90OK, err = r.bool()
	}
	i(&rep.ExitDominated)
	f(&rep.ExitDominatedRatio)
	i(&rep.ExitDomDupInstrs)
	f(&rep.ExitDomDupInstrsRatio)
	i(&rep.Links)
	i(&rep.CountersHighWater)
	u(&rep.CounterAllocs)
	i(&rep.ObservedBytesHighWater)
	u(&rep.ObservedTraces)
	f(&rep.ObservedPctOfCache)
	return err
}

// interner deduplicates the workload and selector strings of decoded
// reports. The distinct strings of a run are bounded by the grid's axes, the
// results are not, so after warm-up result decoding allocates nothing.
type interner struct {
	m map[string]string
}

func newInterner() *interner { return &interner{m: make(map[string]string)} }

func (in *interner) intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}
