// Package repro is the public entry point of the reproduction of
// Hiniker, Hazelwood and Smith, "Improving Region Selection in Dynamic
// Optimization Systems" (MICRO-38, 2005).
//
// It wires the internal substrates together: a workload program (package
// workloads) is interpreted by the VM (package vm) under the simulated
// dynamic optimization system (package dynopt), which drives one of the
// paper's region-selection algorithms (package core) against a simulated
// code cache (package codecache) and reports the paper's metrics (package
// metrics).
//
// Quick start:
//
//	rep, err := repro.RunWorkload("gcc", repro.SelectorLEI, repro.Options{})
//	fmt.Println(rep)
package repro

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Re-exported types so users of the facade can name results and tunables.
type (
	// Report is the full per-run metric set (hit rate, code expansion,
	// region transitions, cycle ratios, cover sets, exit domination,
	// profiling memory).
	Report = metrics.Report
	// Params are the selection-algorithm tunables; the zero value uses the
	// paper's published configuration.
	Params = core.Params
	// Selector is a pluggable region-selection algorithm.
	Selector = core.Selector
	// Workload is a named benchmark program generator.
	Workload = workloads.Workload
	// Program is an assembled simulated binary.
	Program = program.Program
	// Result bundles the report with the underlying cache and collector.
	Result = dynopt.Result
)

// Selector names accepted by NewSelector and RunWorkload.
const (
	SelectorNET     = "net"
	SelectorLEI     = "lei"
	SelectorNETComb = "net+comb"
	SelectorLEIComb = "lei+comb"
	// SelectorAdaptive is the per-phase meta-selector switching between
	// the four static policies online (DESIGN.md §7).
	SelectorAdaptive = "adaptive"
	// Related-work schemes (paper §5).
	SelectorMojoNET = "mojo-net"
	SelectorBOA     = "boa"
	SelectorWRS     = "wrs"
)

// SelectorNames lists the accepted selector names in presentation order.
func SelectorNames() []string {
	return []string{
		SelectorNET, SelectorLEI, SelectorNETComb, SelectorLEIComb,
		SelectorAdaptive, SelectorMojoNET, SelectorBOA, SelectorWRS,
	}
}

// NewSelector constructs a fresh selector by name. Selectors are stateful
// and single-use: build a new one per run.
func NewSelector(name string, params Params) (Selector, error) {
	switch name {
	case SelectorNET:
		return core.NewNET(params), nil
	case SelectorLEI:
		return core.NewLEI(params), nil
	case SelectorNETComb:
		return core.NewCombiner(core.BaseNET, params), nil
	case SelectorLEIComb:
		return core.NewCombiner(core.BaseLEI, params), nil
	case SelectorAdaptive:
		return core.NewAdaptive(params), nil
	case SelectorMojoNET:
		return core.NewMojoNET(params, 30), nil
	case SelectorBOA:
		return core.NewBOA(params), nil
	case SelectorWRS:
		return core.NewWRS(params), nil
	default:
		return nil, fmt.Errorf("repro: unknown selector %q (known: %v)", name, SelectorNames())
	}
}

// Options configures a run.
type Options struct {
	// Params tunes the selection algorithms (zero: paper defaults).
	Params Params
	// Scale overrides the workload's default scale when positive.
	Scale int
	// CacheLimitBytes bounds the code cache (0: unbounded, as in the paper).
	CacheLimitBytes int
	// MaxInstrs bounds interpretation (0: a large default).
	MaxInstrs uint64
}

// Run simulates prog under the selector and returns the full result.
func Run(prog *Program, sel Selector, opts Options) (Result, error) {
	return dynopt.Run(prog, dynopt.Config{
		Selector:        sel,
		CacheLimitBytes: opts.CacheLimitBytes,
		VM:              vm.Config{MaxInstrs: opts.MaxInstrs},
	})
}

// RunWorkload builds the named workload and simulates it under the named
// selector.
func RunWorkload(workload, selector string, opts Options) (Report, error) {
	w, ok := workloads.Get(workload)
	if !ok {
		names := workloads.Names()
		sort.Strings(names)
		return Report{}, fmt.Errorf("repro: unknown workload %q (known: %v)", workload, names)
	}
	sel, err := NewSelector(selector, opts.Params)
	if err != nil {
		return Report{}, err
	}
	res, err := Run(w.Build(opts.Scale), sel, opts)
	if err != nil {
		return Report{}, fmt.Errorf("repro: running %s under %s: %w", workload, selector, err)
	}
	res.Report.Workload = workload
	return res.Report, nil
}

// ParseAndRun assembles source text (the internal/asm syntax) and simulates
// it under the named selector — the quickest way to try an algorithm on a
// hand-written program.
func ParseAndRun(source, selector string, opts Options) (Report, error) {
	prog, err := asm.Parse(source)
	if err != nil {
		return Report{}, err
	}
	sel, err := NewSelector(selector, opts.Params)
	if err != nil {
		return Report{}, err
	}
	res, err := Run(prog, sel, opts)
	if err != nil {
		return Report{}, err
	}
	res.Report.Workload = "asm"
	return res.Report, nil
}

// Workloads returns every registered workload name.
func Workloads() []string { return workloads.Names() }

// SpecWorkloads returns the twelve SPECint2000-named benchmarks in the
// paper's figure order.
func SpecWorkloads() []string { return workloads.SpecNames() }

// GetWorkload returns a registered workload.
func GetWorkload(name string) (Workload, bool) { return workloads.Get(name) }

// StubBytes is the per-exit-stub size estimate used for cache sizing,
// matching the paper's assumption.
const StubBytes = codecache.StubBytes
