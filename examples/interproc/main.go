// Interprocedural cycles (paper Figure 2): a loop whose dominant path calls
// a function at a lower address. NET cannot extend a trace across both the
// backward call and its return, so it selects two separated traces with
// extra exit stubs; LEI selects the ideal single cyclic trace.
//
//	go run ./examples/interproc
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/dynopt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	prog := workloads.LoopWithCall(3000)
	for _, selName := range []string{"net", "lei"} {
		sel, err := repro.NewSelector(selName, repro.Params{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", selName)
		fmt.Printf("regions=%d  instrs-copied=%d  stubs=%d  transitions=%d\n",
			res.Report.Regions, res.Report.CodeExpansion, res.Report.Stubs, res.Report.Transitions)
		for _, r := range res.Cache.AllRegions() {
			span := ""
			if r.Cyclic {
				span = "  <- spans the interprocedural cycle"
			}
			fmt.Printf("  region %d: entry=%d blocks=%d stubs=%d%s\n",
				r.ID, r.Entry, len(r.Blocks), r.Stubs, span)
			for _, b := range r.Blocks {
				fn := "?"
				if f, ok := prog.FuncAt(b.Start); ok {
					fn = f.Name
				}
				fmt.Printf("    @%-4d len=%-2d in %s\n", b.Start, b.Len, fn)
			}
		}
		fmt.Println()
	}
	fmt.Println("NET's first trace ends at the backward call (an interprocedural")
	fmt.Println("forward path cannot include it, paper §2.2); the callee becomes a")
	fmt.Println("separate trace and every iteration transitions between regions.")
	fmt.Println("LEI reconstructs the whole just-executed cycle from its history")
	fmt.Println("buffer, so one trace covers loop body, call, callee, and return.")
}
