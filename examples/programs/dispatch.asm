; dispatch.asm — a bytecode-interpreter shape: an indirect jump through a
; table rotates over three handlers. Run with:
;
;   go run ./cmd/regionsim -asm examples/programs/dispatch.asm -all
;
; The hot cycle passes through the indirect jump; compare how each
; selector copes.
func main:
  movi r2, 64            ; table base
  la   r3, op0
  store [r2+0], r3
  la   r3, op1
  store [r2+1], r3
  la   r3, op2
  store [r2+2], r3
  movi r1, 6000          ; iterations
  movi r4, 0             ; rotor
fetch:
  movi r5, 3
  rem  r6, r4, r5
  add  r7, r2, r6
  load r8, [r7+0]
  jmpi r8
op0:
  addi r10, r10, 1
  jmp  next
op1:
  addi r11, r11, 2
  jmp  next
op2:
  addi r12, r12, 3
  jmp  next
next:
  addi r4, r4, 1
  addi r1, r1, -1
  bgt  r1, r0, fetch
  halt
