; spin.asm — a minimal hot loop with a helper call, runnable with:
;
;   go run ./cmd/regionsim -asm examples/programs/spin.asm -selector lei -regions
;
; The helper sits below main, so the call is a backward branch: NET cannot
; span the loop cycle (paper Figure 2), LEI can.
  jmp main

func helper:
  add  r20, r20, r21
  xor  r21, r21, r20
  ret

func main:
  movi r1, 5000
loop:
  addi r2, r2, 3
  call helper
  addi r1, r1, -1
  bgt  r1, r0, loop
  halt
