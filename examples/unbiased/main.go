// Unbiased branches (paper Figure 4): a 50/50 branch whose arms rejoin
// forces NET to select two traces that duplicate everything after the join
// point. Trace combination observes both paths and selects one region with
// a split and a join, eliminating the duplication and most transitions.
//
//	go run ./examples/unbiased
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	prog := workloads.UnbiasedBranch(5000)
	for _, selName := range []string{"net", "net+comb", "lei+comb"} {
		sel, err := repro.NewSelector(selName, repro.Params{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}})
		if err != nil {
			log.Fatal(err)
		}
		// Count duplicated instructions: program addresses copied into more
		// than one region.
		seen := map[isa.Addr]int{}
		for _, r := range res.Cache.AllRegions() {
			for _, b := range r.Blocks {
				for a := b.Start; a < b.Start+isa.Addr(b.Len); a++ {
					seen[a]++
				}
			}
		}
		dup := 0
		for _, n := range seen {
			if n > 1 {
				dup += n - 1
			}
		}
		fmt.Printf("=== %s ===\n", selName)
		fmt.Printf("regions=%d instrs-copied=%d duplicated=%d stubs=%d transitions=%d\n",
			res.Report.Regions, res.Report.CodeExpansion, dup,
			res.Report.Stubs, res.Report.Transitions)
		for _, r := range res.Cache.AllRegions() {
			fmt.Printf("  region %d (%s): entry=%d blocks=%d", r.ID, r.Kind, r.Entry, len(r.Blocks))
			splits := 0
			for _, ss := range r.Succs {
				if len(ss) > 1 {
					splits++
				}
			}
			if splits > 0 {
				fmt.Printf(" internal-splits=%d", splits)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Plain NET selects one trace per arm and duplicates the code after")
	fmt.Println("the rejoin (paper Figure 4); combined regions keep both arms and")
	fmt.Println("the shared tail in one region with no duplication, so control")
	fmt.Println("stays put whichever way the unbiased branch goes.")
}
