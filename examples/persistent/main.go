// Persistent code cache (extension): run a workload cold, snapshot the
// selected regions, then run it again warm-started from the snapshot — the
// second run never pays the profile-and-select warm-up.
//
//	go run ./examples/persistent
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/codecache"
	"repro/internal/dynopt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	const bench = "gcc"
	prog := workloads.MustGet(bench).Build(0)

	run := func(preload []codecache.RegionSnapshot) dynopt.Result {
		sel, err := repro.NewSelector(repro.SelectorLEIComb, repro.Params{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}, Preload: preload})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	cold := run(nil)
	// Serialize and reload the snapshot exactly as a real system would
	// persist it between process lifetimes.
	var buf bytes.Buffer
	if err := cold.Cache.WriteSnapshot(&buf); err != nil {
		log.Fatal(err)
	}
	snapshotBytes := buf.Len()
	snaps, err := codecache.ReadSnapshot(&buf)
	if err != nil {
		log.Fatal(err)
	}
	warm := run(snaps)

	fmt.Printf("workload %q under %s\n\n", bench, repro.SelectorLEIComb)
	fmt.Printf("%-6s %9s %14s %16s %9s\n", "run", "hit%", "interp-branches", "regions-selected", "snapshot")
	fmt.Printf("%-6s %9.2f %14d %16d %8dB\n", "cold", 100*cold.Report.HitRate,
		cold.Report.InterpBranches, cold.Report.Regions, snapshotBytes)
	fmt.Printf("%-6s %9.2f %14d %16d\n", "warm", 100*warm.Report.HitRate,
		warm.Report.InterpBranches, warm.Report.Regions-cold.Report.Regions)
	fmt.Println("\nThe warm run starts with every region already cached: interpreted")
	fmt.Println("branches (each of which pays the profiling path of paper Figure 5)")
	fmt.Println("collapse to the few executed before the first branch into the cache.")
}
