// Bounded code cache (extension beyond the paper): the paper's framework
// assumes an unbounded cache and argues its algorithms should help bounded
// caches because they cache less code. This example bounds the cache and
// measures flushes and hit rate as the limit shrinks, for NET vs combined
// LEI.
//
//	go run ./examples/boundedcache
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/dynopt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	const bench = "gcc"
	w, _ := workloads.Get(bench)
	prog := w.Build(0)

	fmt.Printf("workload %q, bounded cache sweep\n\n", bench)
	fmt.Printf("%8s  %-9s %8s %8s %9s %12s\n", "limit", "selector", "hit%", "regions", "flushes", "transitions")
	for _, limit := range []int{0, 4096, 2048, 1024, 512} {
		for _, selName := range []string{"net", "lei+comb"} {
			sel, err := repro.NewSelector(selName, repro.Params{})
			if err != nil {
				log.Fatal(err)
			}
			res, err := dynopt.Run(prog, dynopt.Config{
				Selector:        sel,
				VM:              vm.Config{},
				CacheLimitBytes: limit,
			})
			if err != nil {
				log.Fatal(err)
			}
			lim := "none"
			if limit > 0 {
				lim = fmt.Sprintf("%dB", limit)
			}
			fmt.Printf("%8s  %-9s %8.2f %8d %9d %12d\n",
				lim, selName, 100*res.Report.HitRate, res.Report.Regions,
				res.Cache.Flushes(), res.Report.Transitions)
		}
	}
	fmt.Println("\nSmaller regions and less duplication mean combined LEI fits more of")
	fmt.Println("the working set before flushing — the effect the paper predicts for")
	fmt.Println("bounded caches (§2.3) without evaluating it.")
}
