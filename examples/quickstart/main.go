// Quickstart: run one workload under every region-selection algorithm via
// the public facade and compare the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const workload = "mcf" // tight interprocedural cycles: LEI's best case
	fmt.Printf("workload %q under every selector (paper defaults)\n\n", workload)
	fmt.Printf("%-10s %8s %8s %8s %12s %9s %8s\n",
		"selector", "hit%", "regions", "instrs", "transitions", "spanned%", "cover90")
	for _, sel := range repro.SelectorNames() {
		rep, err := repro.RunWorkload(workload, sel, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.2f %8d %8d %12d %9.1f %8d\n",
			sel, 100*rep.HitRate, rep.Regions, rep.CodeExpansion,
			rep.Transitions, 100*rep.SpannedRatio, rep.CoverSet90)
	}
	fmt.Println("\nLEI spans the loop-with-call cycle NET cannot (paper Figure 2 / §3),")
	fmt.Println("so its traces stay in one region and transitions collapse; trace")
	fmt.Println("combination (\"+comb\") merges related paths and shrinks cover sets (§4).")
}
