// Nested loops (paper Figure 3): NET duplicates the first iteration of the
// inner loop inside the trace selected for the outer loop; LEI selects the
// inner cycle and then a second trace that stops exactly where the cached
// inner loop begins, avoiding the duplication.
//
//	go run ./examples/nestedloops
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	prog := workloads.NestedLoops(2000, 20)
	inner, _ := prog.Label("B")

	for _, selName := range []string{"net", "lei"} {
		sel, err := repro.NewSelector(selName, repro.Params{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}})
		if err != nil {
			log.Fatal(err)
		}
		// Count how many times the inner-loop block was copied to the cache.
		innerCopies := 0
		for _, r := range res.Cache.AllRegions() {
			if r.Contains(inner) {
				innerCopies++
			}
		}
		fmt.Printf("=== %s ===\n", selName)
		fmt.Printf("regions=%d instrs-copied=%d inner-loop copies=%d transitions=%d\n",
			res.Report.Regions, res.Report.CodeExpansion, innerCopies, res.Report.Transitions)
		for _, r := range res.Cache.AllRegions() {
			fmt.Printf("  region %d: entry=%d blocks=[", r.ID, r.Entry)
			for i, b := range r.Blocks {
				if i > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("@%d", b.Start)
			}
			fmt.Printf("] cyclic=%v\n", r.Cyclic)
		}
		fmt.Println()
	}
	fmt.Printf("inner loop block is @%d (label B)\n", isa.Addr(inner))
	fmt.Println("Under NET the outer-loop trace carries a duplicate copy of B (its")
	fmt.Println("first iteration); under LEI the second trace ends where the cached")
	fmt.Println("inner loop starts — fewer blocks selected, divided among fewer traces.")
}
