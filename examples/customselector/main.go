// Custom selector: the core.Selector interface accepts any region-selection
// algorithm, exactly as the paper's simulation framework abstracted all
// selection details behind one interface (§2.3, footnote 4). This example
// implements BOA-style selection (paper §5): per-conditional-branch taken
// counters, and after the entry executes 15 times, a trace is formed by
// statically following each branch's most frequent direction.
//
//	go run ./examples/customselector
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// boa counts, for every conditional branch, how often each direction is
// taken while interpreting; a trace follows the majority direction of each
// branch from a hot entry (IBM BOA's scheme, paper §5).
type boa struct {
	threshold int
	entries   *profile.CounterPool
	taken     map[isa.Addr][2]uint64 // branch -> [not-taken, taken] counts
}

func newBOA() *boa {
	return &boa{threshold: 15, entries: profile.NewCounterPool(), taken: map[isa.Addr][2]uint64{}}
}

func (b *boa) Name() string { return "boa" }

func (b *boa) Transfer(env core.Env, ev core.Event) {
	p := env.Program()
	if p.At(ev.Src).IsConditional() {
		c := b.taken[ev.Src]
		if ev.Taken {
			c[1]++
		} else {
			c[0]++
		}
		b.taken[ev.Src] = c
	}
	if !ev.Taken || ev.ToCache || !ev.Backward() {
		return
	}
	if b.entries.Incr(ev.Tgt) < b.threshold {
		return
	}
	b.entries.Release(ev.Tgt)
	if env.Cache().HasEntry(ev.Tgt) {
		return
	}
	if spec, ok := b.form(env, ev.Tgt); ok {
		if _, err := env.Insert(spec); err != nil {
			env.Fail(err)
		}
	}
}

// form follows the most frequent direction of every branch from the entry,
// stopping at indirect control flow, at cached regions, at revisited
// blocks, or after 64 blocks.
func (b *boa) form(env core.Env, entry isa.Addr) (codecache.Spec, bool) {
	p := env.Program()
	var blocks []codecache.BlockSpec
	seen := map[isa.Addr]bool{}
	cyclic := false
	cur := entry
	for len(blocks) < 64 {
		if seen[cur] {
			cyclic = cur == entry
			break
		}
		if len(blocks) > 0 && env.Cache().HasEntry(cur) {
			break
		}
		n := p.BlockLen(cur)
		blocks = append(blocks, codecache.BlockSpec{Start: cur, Len: n})
		seen[cur] = true
		last := p.At(cur + isa.Addr(n) - 1)
		switch {
		case last.Op == isa.Br:
			c := b.taken[cur+isa.Addr(n)-1]
			if c[1] >= c[0] {
				cur = last.Target
			} else {
				cur = cur + isa.Addr(n)
			}
		case last.Op == isa.Jmp || last.Op == isa.Call:
			cur = last.Target
		case last.EndsBlock():
			// Indirect or halt: stop.
			return spec(entry, blocks, cyclic), true
		default:
			cur = cur + isa.Addr(n)
		}
	}
	return spec(entry, blocks, cyclic), true
}

func spec(entry isa.Addr, blocks []codecache.BlockSpec, cyclic bool) codecache.Spec {
	return codecache.Spec{Entry: entry, Kind: codecache.KindTrace, Blocks: blocks, Cyclic: cyclic}
}

func (b *boa) CacheExit(env core.Env, _, tgt isa.Addr) {
	// Exit targets may start traces too, like NET.
	if b.entries.Incr(tgt) >= b.threshold {
		b.entries.Release(tgt)
		if !env.Cache().HasEntry(tgt) {
			if s, ok := b.form(env, tgt); ok {
				if _, err := env.Insert(s); err != nil {
					env.Fail(err)
				}
			}
		}
	}
}

func (b *boa) Stats() core.ProfileStats {
	return core.ProfileStats{
		CountersHighWater: b.entries.HighWater() + len(b.taken),
		CounterAllocs:     b.entries.Allocations(),
	}
}

var _ core.Selector = (*boa)(nil)

func main() {
	const bench = "gcc"
	w, _ := workloads.Get(bench)
	prog := w.Build(0)

	fmt.Printf("%-8s %8s %8s %12s %8s %9s\n", "selector", "hit%", "regions", "transitions", "cover90", "counters")
	for _, name := range []string{"net", "lei", "boa"} {
		var sel core.Selector
		if name == "boa" {
			sel = newBOA()
		} else {
			var err error
			sel, err = repro.NewSelector(name, repro.Params{})
			if err != nil {
				log.Fatal(err)
			}
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.2f %8d %12d %8d %9d\n",
			name, 100*res.Report.HitRate, res.Report.Regions,
			res.Report.Transitions, res.Report.CoverSet90, res.Report.CountersHighWater)
	}
	fmt.Println("\nBOA profiles every conditional branch (more counters) to pick trace")
	fmt.Println("directions statistically; as the paper notes (§5), more careful trace")
	fmt.Println("selection still does not address separation and duplication.")
}
