// Trace record and replay (the paper's Pin-style decoupling): interpret a
// workload once while recording its block-event stream, then evaluate
// several region-selection algorithms by replaying the recording — no
// re-interpretation, bit-identical results.
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/dynopt"
	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	const bench = "perlbmk"
	prog := workloads.MustGet(bench).Build(0)

	var buf bytes.Buffer
	h, err := tracestream.Record(prog, bench, 0, vm.Config{}, &buf)
	if err != nil {
		log.Fatal(err)
	}
	recording := buf.Bytes()
	fmt.Printf("recorded %q: %d instructions, %d block events (%d taken), %d bytes (%.2f B/event)\n\n",
		bench, h.Instrs, h.Events, h.Branches, len(recording), float64(len(recording))/float64(h.Events))

	fmt.Printf("%-10s %8s %8s %12s %8s\n", "selector", "hit%", "regions", "transitions", "cover90")
	for _, selName := range []string{repro.SelectorNET, repro.SelectorLEI, repro.SelectorLEIComb} {
		sel, err := repro.NewSelector(selName, repro.Params{})
		if err != nil {
			log.Fatal(err)
		}
		// Stream straight off the recording: the reader feeds the simulator
		// batch by batch without materializing the events.
		rd, err := tracestream.NewReader(bytes.NewReader(recording))
		if err != nil {
			log.Fatal(err)
		}
		hdr := rd.Header()
		if err := hdr.CheckProgram(prog); err != nil {
			log.Fatal(err)
		}
		res, err := dynopt.RunStream(prog, dynopt.Config{Selector: sel}, rd.Feed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.2f %8d %12d %8d\n", selName,
			100*res.Report.HitRate, res.Report.Regions,
			res.Report.Transitions, res.Report.CoverSet90)
	}
	fmt.Println("\nEvery selector consumed the same recorded stream — the methodology")
	fmt.Println("of the paper's framework, which replayed Pin-reported block streams")
	fmt.Println("through each region-selection algorithm (§2.3).")
}
